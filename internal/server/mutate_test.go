package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
)

// newLiveServer builds a finalized (and therefore live-writable) diskstore
// carrying the med fixture and serves it.
func newLiveServer(t *testing.T) (*Server, *httptest.Server, *diskstore.Store) {
	t.Helper()
	ds, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	buildMedGraph(t, ds)
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if !ds.Live() {
		t.Fatal("finalized med store is not live")
	}
	s, ts := newMedServer(t, Config{Graph: ds})
	return s, ts, ds
}

func postMutate(t *testing.T, ts *httptest.Server, body string) (int, mutateResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/mutate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var mr mutateResponse
	var e struct {
		Error string `json:"error"`
	}
	json.Unmarshal(data, &mr)
	json.Unmarshal(data, &e)
	return resp.StatusCode, mr, e.Error
}

// TestMutateHappyPath: one batch creates a vertex with inline props, wires
// it into the base graph through a batch-relative reference, and the write
// is immediately visible to /query.
func TestMutateHappyPath(t *testing.T) {
	_, ts, ds := newLiveServer(t)
	base := ds.NumVertices()
	status, mr, errMsg := postMutate(t, ts, `{
		"vertices": [{"labels": ["Drug"], "props": {"name": "Naproxen"}}],
		"edges":    [{"src": -1, "dst": 2, "type": "treat"}],
		"labels":   [{"v": -1, "label": "NSAID"}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, errMsg)
	}
	if len(mr.Vertices) != 1 || int64(mr.Vertices[0]) != int64(base) {
		t.Errorf("vertices = %v, want [%d]", mr.Vertices, base)
	}
	if len(mr.Edges) != 1 {
		t.Errorf("edges = %v, want one ID", mr.Edges)
	}

	status, qr := post(t, ts, drugQuery, "text/plain")
	if status != http.StatusOK {
		t.Fatalf("query status = %d (%s)", status, qr.Error)
	}
	if len(qr.Rows) != 3 || qr.Rows[2][0] != "Naproxen" {
		t.Errorf("rows after mutate = %v, want the new drug visible", qr.Rows)
	}
}

// TestMutateValueKinds exercises the JSON→graph.Value lowering end to end:
// ints stay exact, floats stay floats, lists flatten, objects are refused.
func TestMutateValueKinds(t *testing.T) {
	_, ts, ds := newLiveServer(t)
	status, mr, errMsg := postMutate(t, ts, `{
		"vertices": [{"labels": ["Drug"], "props": {
			"doses": [100, 200.5, "oral", true, null],
			"count": 9007199254740993
		}}]
	}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, errMsg)
	}
	v := mr.Vertices[0]
	if got, _ := ds.Prop(v, "count"); got.String() != "9007199254740993" {
		t.Errorf("count round-tripped to %s; large int lost precision", got)
	}
	if got, _ := ds.Prop(v, "doses"); got.String() != `[100, 200.5, "oral", true, null]` {
		t.Errorf("doses = %s", got)
	}

	status, _, errMsg = postMutate(t, ts, `{"props": [{"v": 0, "key": "bad", "value": {"nested": 1}}]}`)
	if status != http.StatusBadRequest || !strings.Contains(errMsg, "object") {
		t.Errorf("object value: status = %d (%s), want 400 mentioning objects", status, errMsg)
	}
}

func TestMutateRejectsMalformed(t *testing.T) {
	_, ts, _ := newLiveServer(t)
	cases := map[string]string{
		"truncated JSON": `{"vertices": [`,
		"empty batch":    `{}`,
		"forward ref":    `{"edges": [{"src": -1, "dst": 0, "type": "treat"}]}`,
		"unknown vertex": `{"labels": [{"v": 999, "label": "X"}]}`,
	}
	for name, body := range cases {
		status, _, errMsg := postMutate(t, ts, body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", name, status, errMsg)
		}
		if errMsg == "" {
			t.Errorf("%s: no error message", name)
		}
	}
}

// TestMutateNotLive: a diskstore still in build mode refuses live writes
// with 409 and the recovery hint.
func TestMutateNotLive(t *testing.T) {
	ds, err := diskstore.Open(t.TempDir(), diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	buildMedGraph(t, ds) // never finalized: build mode
	_, ts := newMedServer(t, Config{Graph: ds})
	status, _, errMsg := postMutate(t, ts, `{"vertices": [{"labels": ["Drug"]}]}`)
	if status != http.StatusConflict {
		t.Errorf("status = %d (%s), want 409", status, errMsg)
	}
	if !strings.Contains(errMsg, "Compact") {
		t.Errorf("409 message %q carries no recovery hint", errMsg)
	}
}

// TestMutateNotImplemented: backends without a durable write path
// (memstore) answer 501, not 500.
func TestMutateNotImplemented(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	_, ts := newMedServer(t, Config{Graph: mem})
	status, _, errMsg := postMutate(t, ts, `{"vertices": [{"labels": ["Drug"]}]}`)
	if status != http.StatusNotImplemented {
		t.Errorf("status = %d (%s), want 501", status, errMsg)
	}
}

// TestStatsStorageSection: after live writes, /stats must expose the
// delta/WAL gauges the satellite asks for — segmented state, delta sizes,
// WAL append/sync counters — plus the /mutate endpoint histogram.
func TestStatsStorageSection(t *testing.T) {
	_, ts, _ := newLiveServer(t)
	for i := 0; i < 3; i++ {
		status, _, errMsg := postMutate(t, ts,
			`{"vertices": [{"labels": ["Drug"]}], "edges": [{"src": -1, "dst": 0, "type": "treat"}]}`)
		if status != http.StatusOK {
			t.Fatalf("mutate %d: status = %d (%s)", i, status, errMsg)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sg := st.Storage
	if sg == nil {
		t.Fatal("diskstore-backed server reported no storage stats")
	}
	if !sg.Live || !sg.Segmented {
		t.Errorf("storage = %+v, want live and segmented", sg)
	}
	if sg.DeltaVertices != 3 || sg.DeltaEdges != 3 {
		t.Errorf("delta = %d vertices / %d edges, want 3/3", sg.DeltaVertices, sg.DeltaEdges)
	}
	if sg.WALAppends != 3 || sg.WALSyncs == 0 || sg.WALBytes == 0 {
		t.Errorf("wal counters = %+v, want 3 appends and nonzero syncs/bytes", sg)
	}
	if st.Endpoints["/mutate"].Count != 3 {
		t.Errorf("/mutate latency count = %d, want 3", st.Endpoints["/mutate"].Count)
	}
}

// TestStatsStorageOmittedForMemstore: the storage section is backend
// honesty — absent when the backend has no live-write machinery.
func TestStatsStorageOmittedForMemstore(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	_, ts := newMedServer(t, Config{Graph: mem})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Storage != nil {
		t.Errorf("memstore-backed server reported storage stats: %+v", st.Storage)
	}
}

// TestMutateDraining: a draining server refuses writes like reads.
func TestMutateDraining(t *testing.T) {
	s, ts, _ := newLiveServer(t)
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	status, _, _ := postMutate(t, ts, `{"vertices": [{"labels": ["Drug"]}]}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining mutate: status = %d, want 503", status)
	}
}
