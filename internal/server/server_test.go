package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
)

// buildMedGraph loads the Figure 1(b)-style fixture shared with the query
// package's tests: two drugs, two indications, one treat fan-out.
func buildMedGraph(t *testing.T, b storage.Builder) {
	t.Helper()
	add := func(labels ...string) storage.VID {
		v, err := b.AddVertex(labels...)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	set := func(v storage.VID, key, val string) {
		if err := b.SetProp(v, key, graph.S(val)); err != nil {
			t.Fatal(err)
		}
	}
	edge := func(src, dst storage.VID, etype string) {
		if _, err := b.AddEdge(src, dst, etype); err != nil {
			t.Fatal(err)
		}
	}
	d1, d2 := add("Drug"), add("Drug")
	set(d1, "name", "Aspirin")
	set(d2, "name", "Ibuprofen")
	i1, i2 := add("Indication"), add("Indication")
	set(i1, "desc", "Fever")
	set(i2, "desc", "Headache")
	edge(d1, i1, "treat")
	edge(d1, i2, "treat")
	edge(d2, i1, "treat")
}

// buildWideGraph creates n Drug vertices — enough scan iterations for the
// executor's cancellation checkpoint (every 256 ticks) to fire.
func buildWideGraph(t *testing.T, n int) storage.Builder {
	t.Helper()
	mem := memstore.New()
	for i := 0; i < n; i++ {
		v, err := mem.AddVertex("Drug")
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.SetProp(v, "name", graph.I(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return mem
}

const drugQuery = `MATCH (d:Drug) RETURN d.name ORDER BY d.name`

// queryResponse mirrors the POST /query JSON body.
type queryResponse struct {
	Query   string   `json:"query"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Stats   struct {
		VerticesScanned int64 `json:"vertices_scanned"`
		EdgesTraversed  int64 `json:"edges_traversed"`
		PropsRead       int64 `json:"props_read"`
		RowsEmitted     int64 `json:"rows_emitted"`
	} `json:"stats"`
	ElapsedUS int64  `json:"elapsed_us"`
	Error     string `json:"error"`
}

func newMedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Graph == nil {
		mem := memstore.New()
		buildMedGraph(t, mem)
		cfg.Graph = mem
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, body, contentType string) (int, queryResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("response %d is not JSON: %v\n%s", resp.StatusCode, err, data)
	}
	return resp.StatusCode, qr
}

func TestQueryRawBody(t *testing.T) {
	_, ts := newMedServer(t, Config{})
	status, qr := post(t, ts, drugQuery, "text/plain")
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, qr.Error)
	}
	if len(qr.Columns) != 1 || qr.Columns[0] != "d.name" {
		t.Errorf("columns = %v", qr.Columns)
	}
	if len(qr.Rows) != 2 || qr.Rows[0][0] != "Aspirin" || qr.Rows[1][0] != "Ibuprofen" {
		t.Errorf("rows = %v", qr.Rows)
	}
	if qr.Stats.RowsEmitted != 2 || qr.Stats.VerticesScanned == 0 {
		t.Errorf("stats = %+v", qr.Stats)
	}
	if qr.Query == "" {
		t.Error("executed query text missing from response")
	}
}

func TestQueryJSONBody(t *testing.T) {
	_, ts := newMedServer(t, Config{})
	body, _ := json.Marshal(map[string]string{"query": drugQuery})
	status, qr := post(t, ts, string(body), "application/json")
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, qr.Error)
	}
	if len(qr.Rows) != 2 {
		t.Errorf("rows = %v", qr.Rows)
	}
	// Malformed JSON under a JSON content type is a 400, not a raw query.
	if status, qr = post(t, ts, `{"query": `, "application/json"); status != http.StatusBadRequest {
		t.Errorf("truncated JSON: status = %d (%s)", status, qr.Error)
	}
}

func TestMalformedCypher(t *testing.T) {
	_, ts := newMedServer(t, Config{})
	for _, src := range []string{"THIS IS NOT CYPHER", "MATCH (d:Drug", ""} {
		status, qr := post(t, ts, src, "text/plain")
		if status != http.StatusBadRequest {
			t.Errorf("query %q: status = %d (%s), want 400", src, status, qr.Error)
		}
		if qr.Error == "" {
			t.Errorf("query %q: no error message", src)
		}
	}
}

func TestOversizedBody(t *testing.T) {
	_, ts := newMedServer(t, Config{MaxBodyBytes: 256})
	big := drugQuery + strings.Repeat(" ", 1024)
	status, qr := post(t, ts, big, "text/plain")
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d (%s), want 413", status, qr.Error)
	}
}

func TestQueryTooLong(t *testing.T) {
	_, ts := newMedServer(t, Config{MaxQueryLen: 64})
	long := `MATCH (d:Drug) WHERE d.name = "` + strings.Repeat("x", 200) + `" RETURN d.name`
	status, qr := post(t, ts, long, "text/plain")
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("long query: status = %d (%s), want 413", status, qr.Error)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newMedServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status = %d, want 405", resp.StatusCode)
	}
}

// gatedGraph parks every ForEachVertex call on a gate channel and counts
// how many executors are parked, making "a query is running right now"
// observable and controllable from the test body.
type gatedGraph struct {
	storage.Graph
	gate   chan struct{}
	parked atomic.Int32
}

func (g *gatedGraph) ForEachVertex(label string, fn func(storage.VID) bool) {
	g.parked.Add(1)
	<-g.gate
	g.Graph.ForEachVertex(label, fn)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSaturationSheds429 drives the admission path to saturation
// deterministically: one request executing (parked on the gate), one
// waiting in the single queue slot, and a third arriving — which must be
// shed with 429 immediately, not queued unboundedly. Releasing the gate
// lets the first two finish with 200.
func TestSaturationSheds429(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	g := &gatedGraph{Graph: mem, gate: make(chan struct{})}
	s, ts := newMedServer(t, Config{
		Graph:          g,
		MaxConcurrent:  1,
		MaxQueued:      1,
		RequestTimeout: 30 * time.Second,
	})

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	postAsync := func() {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(drugQuery))
		if err != nil {
			results <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- result{status: resp.StatusCode}
	}

	go postAsync() // request 1: takes the slot, parks on the gate
	waitFor(t, "request 1 executing", func() bool { return g.parked.Load() == 1 })
	go postAsync() // request 2: takes the queue slot
	waitFor(t, "request 2 queued", func() bool { return s.Stats().Admission.Queued == 1 })

	// Request 3 arrives at a full queue: shed.
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(drugQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated request: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	close(g.gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Errorf("parked request finished with %d, want 200", r.status)
		}
	}
	st := s.Stats().Admission
	if st.Shed != 1 || st.Accepted != 2 {
		t.Errorf("admission stats = %+v, want 1 shed / 2 accepted", st)
	}
}

// sleeperGraph delays every HasLabel call, making a label scan take a
// predictable minimum wall time so a short request timeout reliably
// expires at the executor's first cancellation checkpoint.
type sleeperGraph struct {
	storage.Graph
	delay time.Duration
}

func (g *sleeperGraph) HasLabel(v storage.VID, label string) bool {
	time.Sleep(g.delay)
	return g.Graph.HasLabel(v, label)
}

func TestRequestTimeoutCancelsMidQuery(t *testing.T) {
	// 1000 vertices × 100µs per HasLabel: the first checkpoint (tick 256)
	// lands ~25ms in, far past the 5ms deadline; the full scan would take
	// ~100ms, so a hung cancellation still ends quickly but visibly.
	g := &sleeperGraph{Graph: buildWideGraph(t, 1000), delay: 100 * time.Microsecond}
	s, ts := newMedServer(t, Config{Graph: g, RequestTimeout: 5 * time.Millisecond})
	status, qr := post(t, ts, `MATCH (d:Drug) RETURN COUNT(*)`, "text/plain")
	if status != http.StatusGatewayTimeout {
		t.Errorf("status = %d (%s), want 504", status, qr.Error)
	}
	if st := s.Stats().Admission; st.Timeouts != 1 {
		t.Errorf("admission stats = %+v, want 1 timeout", st)
	}
}

// TestClientCancelMidQuery covers the other cancellation path: the client
// disconnects while its query is executing. The executor must notice the
// dead request context and unwind; the server records it as canceled.
func TestClientCancelMidQuery(t *testing.T) {
	// Gate the scan start so the test controls when execution proceeds,
	// and slow each HasLabel so the post-gate scan takes ~100ms — ample
	// time for the server to register the disconnect and for the executor
	// to pass several cancellation checkpoints before the scan could end.
	mem := buildWideGraph(t, 1000)
	g := &gatedGraph{Graph: &sleeperGraph{Graph: mem, delay: 100 * time.Microsecond}, gate: make(chan struct{})}
	s, ts := newMedServer(t, Config{Graph: g, RequestTimeout: 30 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query",
		strings.NewReader(`MATCH (d:Drug) RETURN COUNT(*)`))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	waitFor(t, "query executing", func() bool { return g.parked.Load() == 1 })
	cancel() // client walks away mid-query
	if err := <-done; err == nil {
		t.Error("canceled client request unexpectedly succeeded")
	}
	// The client transport has closed the connection; give the server's
	// background read a moment to notice before execution resumes.
	time.Sleep(50 * time.Millisecond)
	close(g.gate) // let the executor resume; it must notice and unwind
	waitFor(t, "server to record the cancellation", func() bool {
		return s.Stats().Admission.Canceled == 1
	})
}

// TestConcurrentClients hammers one server from 8 concurrent clients — the
// satellite's -race acceptance test. Every response must be a 200 with the
// same row set, and the plan cache must show the compile happened once.
func TestConcurrentClients(t *testing.T) {
	s, ts := newMedServer(t, Config{})
	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(drugQuery))
				if err != nil {
					errs <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
					return
				}
				var qr queryResponse
				if err := json.Unmarshal(data, &qr); err != nil {
					errs <- err
					return
				}
				if len(qr.Rows) != 2 {
					errs <- fmt.Errorf("got %d rows, want 2", len(qr.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Admission.Accepted != clients*perClient {
		t.Errorf("accepted = %d, want %d", st.Admission.Accepted, clients*perClient)
	}
	if got := st.Endpoints["/query"].Count; got != clients*perClient {
		t.Errorf("/query latency count = %d, want %d", got, clients*perClient)
	}
	if st.PlanCache.Hits == 0 || st.PlanCache.Misses-st.PlanCache.Shared != 1 {
		t.Errorf("plan cache = %+v, want exactly one compile and the rest hits", st.PlanCache)
	}
}

func TestHealthzAndStats(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	s, ts := newMedServer(t, Config{Graph: mem})
	post(t, ts, drugQuery, "text/plain")

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, health)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Admission.Accepted != 1 || st.PlanCache.Misses != 1 {
		t.Errorf("stats = %+v, want 1 accepted / 1 cache miss", st)
	}
	if st.Pager != nil {
		t.Error("memstore-backed server reported pager stats")
	}
	if st.Endpoints["/query"].Count != 1 {
		t.Errorf("per-endpoint histogram missing the query: %+v", st.Endpoints)
	}
	_ = s
}

func TestDiskstorePagerStats(t *testing.T) {
	ds, err := diskstore.Open(t.TempDir(), diskstore.Options{CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	buildMedGraph(t, ds)
	if err := ds.Finalize(); err != nil {
		t.Fatal(err)
	}
	_, ts := newMedServer(t, Config{Graph: ds})
	status, qr := post(t, ts, drugQuery, "text/plain")
	if status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, qr.Error)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Pager == nil {
		t.Fatal("diskstore-backed server reported no pager stats")
	}
	if st.Pager.PageHits+st.Pager.PageMisses == 0 {
		t.Error("pager stats all zero after a query")
	}

	// A freshly finalized store uses the current (v5) layout, so /stats
	// must report the compressed adjacency and its ratio over the 64-byte
	// v4 records, plus the persisted per-label counts.
	if !ds.Format().Compressed {
		t.Fatalf("fixture store not compressed: %+v", ds.Format())
	}
	if st.Storage == nil || !st.Storage.Compressed {
		t.Fatalf("storage stats missing compression: %+v", st.Storage)
	}
	if st.Storage.BytesPerEdge <= 0 || st.Storage.BytesPerEdge >= 64 {
		t.Errorf("bytes_per_edge = %v, want in (0, 64)", st.Storage.BytesPerEdge)
	}
	if st.Storage.CompressionRatio < 2 {
		t.Errorf("compression_ratio = %v, want >= 2", st.Storage.CompressionRatio)
	}
	if st.Graph == nil || st.Graph.LabelCounts["Drug"] == 0 {
		t.Errorf("graph stats missing persisted label counts: %+v", st.Graph)
	}
	if len(st.Graph.EdgeTypeCounts) == 0 {
		t.Errorf("v5 store reported no edge-type counts: %+v", st.Graph)
	}
}

func TestDrainingRefusesNewWork(t *testing.T) {
	s, ts := newMedServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, qr := post(t, ts, drugQuery, "text/plain")
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining query: status = %d (%s), want 503", status, qr.Error)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status = %d, want 503", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains starts a real listener, parks one query on
// the gate, and calls Shutdown: it must wait for the in-flight request to
// finish (with a 200) instead of killing it.
func TestGracefulShutdownDrains(t *testing.T) {
	mem := memstore.New()
	buildMedGraph(t, mem)
	g := &gatedGraph{Graph: mem, gate: make(chan struct{})}
	s, err := New(Config{Graph: g, RequestTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	status := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/query", "text/plain", strings.NewReader(drugQuery))
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	waitFor(t, "query executing", func() bool { return g.parked.Load() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Shutdown must be draining, not done, while the request is parked.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(g.gate)
	if got := <-status; got != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", got)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestSwapPurgesOldPlans checks the dataset-swap path the Cache.Purge
// satellite exists for: after Swap, queries see the new graph and the old
// graph's plans are out of the cache.
func TestSwapPurgesOldPlans(t *testing.T) {
	g1 := memstore.New()
	buildMedGraph(t, g1)
	s, ts := newMedServer(t, Config{Graph: g1})
	if _, qr := post(t, ts, drugQuery, "text/plain"); len(qr.Rows) != 2 {
		t.Fatalf("pre-swap rows = %v", qr.Rows)
	}

	g2 := memstore.New()
	v, err := g2.AddVertex("Drug")
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetProp(v, "name", graph.S("OnlyInG2")); err != nil {
		t.Fatal(err)
	}
	if purged := s.Swap(g2, nil); purged != 1 {
		t.Errorf("Swap purged %d plans, want 1", purged)
	}
	status, qr := post(t, ts, drugQuery, "text/plain")
	if status != http.StatusOK {
		t.Fatalf("post-swap status = %d (%s)", status, qr.Error)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0] != "OnlyInG2" {
		t.Errorf("post-swap rows = %v, want the g2 drug", qr.Rows)
	}
	if st := s.Cache().Stats(); st.Size != 1 {
		t.Errorf("cache size after swap+query = %d, want 1 (old plans purged)", st.Size)
	}
}

func TestNewRequiresGraph(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil graph")
	}
}

func TestJSONEncoder(t *testing.T) {
	cases := []struct {
		v    graph.Value
		want string
	}{
		{graph.Null, `null`},
		{graph.S("plain"), `"plain"`},
		{graph.S("quote\" slash\\ ctrl\n\x01"), `"quote\" slash\\ ctrl\n\u0001"`},
		{graph.S("unicode ✓"), `"unicode ✓"`},
		{graph.S("bad\xffutf8"), `"bad\ufffdutf8"`},
		{graph.I(-42), `-42`},
		{graph.F(2.5), `2.5`},
		{graph.F(math.NaN()), `null`},
		{graph.B(true), `true`},
		{graph.L(graph.S("a"), graph.I(1), graph.L(graph.B(false))), `["a",1,[false]]`},
	}
	for _, c := range cases {
		got := string(appendJSONValue(nil, c.v))
		if got != c.want {
			t.Errorf("appendJSONValue(%v) = %s, want %s", c.v, got, c.want)
		}
		if !json.Valid([]byte(got)) {
			t.Errorf("appendJSONValue(%v) produced invalid JSON: %s", c.v, got)
		}
	}
}

// TestQueryResponseMatchesEncodingJSON cross-checks the hand-rolled
// response encoder against a stdlib re-decode.
func TestQueryResponseMatchesEncodingJSON(t *testing.T) {
	_, ts := newMedServer(t, Config{})
	resp, err := http.Post(ts.URL+"/query", "text/plain",
		bytes.NewReader([]byte(`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(i.desc) ORDER BY d.name`)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("response is not valid JSON: %s", data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 2 || qr.Rows[0][0] != "Aspirin" || qr.Rows[0][1] != float64(2) {
		t.Errorf("rows = %v", qr.Rows)
	}
}

// TestStatsTopQueries: /stats must report per-shape latency for the
// executed (post-rewrite, canonical) query texts, worst p99 first, with
// repeat executions of the same shape folded into one entry.
func TestStatsTopQueries(t *testing.T) {
	s, ts := newMedServer(t, Config{})
	countQuery := `MATCH (d:Drug) RETURN COUNT(*)`
	for i := 0; i < 3; i++ {
		if status, _ := post(t, ts, drugQuery, "text/plain"); status != http.StatusOK {
			t.Fatalf("query %d: status %d", i, status)
		}
	}
	if status, _ := post(t, ts, countQuery, "text/plain"); status != http.StatusOK {
		t.Fatalf("count query: status %d", status)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if len(st.TopQueries) != 2 {
		t.Fatalf("top_queries has %d entries, want 2: %+v", len(st.TopQueries), st.TopQueries)
	}
	byText := map[string]QueryShapeStats{}
	for _, q := range st.TopQueries {
		byText[q.Query] = q
	}
	// The tracked text is the canonical rendering, which these plain
	// queries round-trip to themselves.
	if got := byText[drugQuery].Count; got != 3 {
		t.Errorf("shape %q count = %d, want 3 (tracked by canonical text)", drugQuery, got)
	}
	if got := byText[countQuery].Count; got != 1 {
		t.Errorf("shape %q count = %d, want 1", countQuery, got)
	}
	for i := 1; i < len(st.TopQueries); i++ {
		if st.TopQueries[i-1].P99US < st.TopQueries[i].P99US {
			t.Errorf("top_queries not sorted by p99 desc: %+v", st.TopQueries)
		}
	}
	if st.QueryShapesDropped != 0 {
		t.Errorf("query_shapes_dropped = %d, want 0", st.QueryShapesDropped)
	}
	_ = s
}

// TestStatsTopQueriesBounded: past MaxQueryShapes distinct texts, new
// shapes are dropped (and counted), never tracked — the key-space bound.
func TestStatsTopQueriesBounded(t *testing.T) {
	_, ts := newMedServer(t, Config{MaxQueryShapes: 2, TopQueries: 10})
	shapes := []string{
		`MATCH (d:Drug) RETURN d.name`,
		`MATCH (d:Drug) RETURN COUNT(*)`,
		`MATCH (d:Drug) RETURN d.name LIMIT 1`,
		`MATCH (d:Drug) RETURN d.name LIMIT 2`,
	}
	for _, q := range shapes {
		if status, _ := post(t, ts, q, "text/plain"); status != http.StatusOK {
			t.Fatalf("%q: status %d", q, status)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.TopQueries) != 2 {
		t.Errorf("tracked %d shapes with a capacity of 2: %+v", len(st.TopQueries), st.TopQueries)
	}
	if st.QueryShapesDropped != 2 {
		t.Errorf("query_shapes_dropped = %d, want 2", st.QueryShapesDropped)
	}
}

// TestQueryWorkersParallelExecution drives the -query-workers knob end to
// end: a server configured for intra-query parallelism must answer with
// exactly the rows and work counters of a serial server, and /stats must
// report the configured worker cap next to the admission bounds.
func TestQueryWorkersParallelExecution(t *testing.T) {
	const n = 500
	serial, serialTS := newMedServer(t, Config{Graph: buildWideGraph(t, n)})
	parallel, parallelTS := newMedServer(t, Config{Graph: buildWideGraph(t, n), QueryWorkers: 4})

	code, want := post(t, serialTS, drugQuery, "text/plain")
	if code != http.StatusOK {
		t.Fatalf("serial status = %d", code)
	}
	code, got := post(t, parallelTS, drugQuery, "text/plain")
	if code != http.StatusOK {
		t.Fatalf("parallel status = %d", code)
	}
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Errorf("parallel rows differ from serial:\n got %v\nwant %v", got.Rows, want.Rows)
	}
	if got.Stats != want.Stats {
		t.Errorf("parallel stats = %+v, want exactly serial %+v", got.Stats, want.Stats)
	}

	if qw := serial.Stats().Admission.QueryWorkers; qw != DefaultQueryWorkers {
		t.Errorf("serial /stats query_workers = %d, want %d", qw, DefaultQueryWorkers)
	}
	if qw := parallel.Stats().Admission.QueryWorkers; qw != 4 {
		t.Errorf("parallel /stats query_workers = %d, want 4", qw)
	}
}
