package server

// Tests for the observability layer: request-ID propagation (headers and
// error bodies, across every endpoint and every refusal path), the
// Prometheus /metrics exposition (strict-parsed, monotonic across
// scrapes), PROFILE traces, and the structured slow-query log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage/memstore"
)

func do(t *testing.T, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRequestIDPropagation: every endpoint echoes a client-sent
// X-Request-Id; without one a non-empty ID is generated; malformed IDs
// are replaced, not echoed.
func TestRequestIDPropagation(t *testing.T) {
	s, ts, _ := newLiveServer(t)
	// /admin/compact requests below launch real background folds; they
	// must finish before the test's store closes.
	defer s.compact.wg.Wait()
	endpoints := []struct{ method, path, body string }{
		{"POST", "/query", drugQuery},
		{"POST", "/mutate", `{"vertices": [{"labels": ["Drug"]}]}`},
		{"POST", "/admin/compact", ""},
		{"GET", "/healthz", ""},
		{"GET", "/stats", ""},
		{"GET", "/metrics", ""},
	}
	for _, ep := range endpoints {
		req, _ := http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(ep.body))
		req.Header.Set("X-Request-Id", "trace-abc.123")
		resp, _ := do(t, req)
		if got := resp.Header.Get("X-Request-Id"); got != "trace-abc.123" {
			t.Errorf("%s %s: X-Request-Id = %q, want client ID echoed", ep.method, ep.path, got)
		}

		req, _ = http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(ep.body))
		resp, _ = do(t, req)
		if got := resp.Header.Get("X-Request-Id"); got == "" {
			t.Errorf("%s %s: no generated X-Request-Id", ep.method, ep.path)
		}

		req, _ = http.NewRequest(ep.method, ts.URL+ep.path, strings.NewReader(ep.body))
		req.Header.Set("X-Request-Id", "evil id{with spaces}")
		resp, _ = do(t, req)
		if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, "evil") {
			t.Errorf("%s %s: malformed client ID handled as %q, want generated", ep.method, ep.path, got)
		}
	}
}

// TestRequestIDInErrorBodies: error responses carry request_id in the
// body — parse errors, the 429 shed path (with Retry-After), and the
// draining 503.
func TestRequestIDInErrorBodies(t *testing.T) {
	errBody := func(t *testing.T, data []byte) map[string]string {
		t.Helper()
		var m map[string]string
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("error body is not JSON: %v\n%s", err, data)
		}
		return m
	}

	t.Run("parse error", func(t *testing.T) {
		_, ts := newMedServer(t, Config{})
		req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader("NOT CYPHER"))
		req.Header.Set("X-Request-Id", "bad-query-1")
		resp, data := do(t, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if m := errBody(t, data); m["request_id"] != "bad-query-1" || m["error"] == "" {
			t.Errorf("error body = %v, want request_id and error", m)
		}
	})

	t.Run("shed 429", func(t *testing.T) {
		// One slot, zero queue: a request parked in the slot makes the
		// next one shed immediately.
		block := make(chan struct{})
		mem := memstore.New()
		buildMedGraph(t, mem)
		s, err := New(Config{Graph: mem, MaxConcurrent: 1, MaxQueued: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		// Occupy the slot and the queue directly through the semaphore.
		s.sem <- struct{}{}
		s.m.queued.Add(1)
		defer func() { <-s.sem; s.m.queued.Add(-1); close(block) }()

		req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(drugQuery))
		req.Header.Set("X-Request-Id", "shed-1")
		resp, data := do(t, req)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") != "1" {
			t.Errorf("Retry-After = %q", resp.Header.Get("Retry-After"))
		}
		if resp.Header.Get("X-Request-Id") != "shed-1" {
			t.Errorf("shed response lost the request ID header")
		}
		if m := errBody(t, data); m["request_id"] != "shed-1" {
			t.Errorf("shed error body = %v, want request_id", m)
		}
	})

	t.Run("draining 503", func(t *testing.T) {
		for _, path := range []string{"/query", "/mutate", "/admin/compact"} {
			s, ts := newMedServer(t, Config{})
			s.draining.Store(true)
			req, _ := http.NewRequest("POST", ts.URL+path, strings.NewReader(drugQuery))
			req.Header.Set("X-Request-Id", "drain-1")
			resp, data := do(t, req)
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("%s: status = %d, want 503", path, resp.StatusCode)
			}
			if m := errBody(t, data); m["request_id"] != "drain-1" {
				t.Errorf("%s: drain error body = %v, want request_id", path, m)
			}
		}
	})
}

// TestMetricsExposition: /metrics strict-parses, covers every subsystem
// the ISSUE names, and stays monotonic across scrapes with traffic in
// between.
func TestMetricsExposition(t *testing.T) {
	_, ts, _ := newLiveServer(t)
	scrape := func() *obs.Exposition {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("Content-Type = %q", ct)
		}
		data, _ := io.ReadAll(resp.Body)
		exp, err := obs.ParseExposition(data)
		if err != nil {
			t.Fatalf("scrape failed strict parse: %v\n%s", err, data)
		}
		return exp
	}

	first := scrape()
	for _, fam := range []string{
		"pgs_server_requests_total", "pgs_server_inflight", "pgs_server_queued",
		"pgs_request_latency_seconds", "pgs_query_vertices_scanned_total",
		"pgs_plancache_hits_total", "pgs_plancache_size",
		"pgs_pager_page_reads_total",
		"pgs_wal_appends_total", "pgs_wal_sync_seconds_total",
		"pgs_delta_vertices", "pgs_compact_generation", "pgs_compact_folds_total",
		"pgs_server_slow_queries_total", "pgs_server_uptime_seconds",
	} {
		if _, ok := first.Types[fam]; !ok {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	// Traffic between scrapes: queries and a mutation.
	for i := 0; i < 3; i++ {
		post(t, ts, drugQuery, "text/plain")
	}
	postMutate(t, ts, `{"vertices": [{"labels": ["Drug"], "props": {"name": "New"}}]}`)

	second := scrape()
	if err := obs.CheckCounterMonotonic(first, second); err != nil {
		t.Errorf("counters not monotonic across scrapes: %v", err)
	}
	key := `pgs_server_requests_total{outcome="accepted"}`
	if second.Samples[key] < first.Samples[key]+4 {
		t.Errorf("accepted: %v -> %v, want +4 or more", first.Samples[key], second.Samples[key])
	}
	if second.Samples["pgs_query_rows_emitted_total{}"] < 6 {
		t.Errorf("rows emitted total = %v, want >= 6", second.Samples["pgs_query_rows_emitted_total{}"])
	}
	if second.Samples["pgs_wal_appends_total{}"] < 1 {
		t.Errorf("wal appends = %v, want >= 1", second.Samples["pgs_wal_appends_total{}"])
	}
}

// profiledResponse is queryResponse plus the profile object.
type profiledResponse struct {
	queryResponse
	RequestID string `json:"request_id"`
	Profile   *struct {
		Phases []struct {
			Name string `json:"name"`
			US   int64  `json:"us"`
		} `json:"phases"`
		PlanCacheHit bool `json:"plan_cache_hit"`
		Plan         *struct {
			Steps []struct {
				Op       string `json:"op"`
				Target   string `json:"target"`
				Visited  int64  `json:"visited"`
				Produced int64  `json:"produced"`
			} `json:"steps"`
			Parallel bool `json:"parallel"`
			Workers  int  `json:"workers"`
		} `json:"plan"`
	} `json:"profile"`
}

func postProfiled(t *testing.T, ts *httptest.Server, path, body string) (int, profiledResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var pr profiledResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, data)
	}
	return resp.StatusCode, pr
}

// TestProfileMode: both spellings return a trace whose phases and
// per-step counters are consistent with the response's stats, and an
// unprofiled request carries no profile.
func TestProfileMode(t *testing.T) {
	_, ts := newMedServer(t, Config{})
	twoHop := `MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, i.desc`

	for _, tc := range []struct{ name, path, body string }{
		{"query param", "/query?profile=1", twoHop},
		{"PROFILE keyword", "/query", "PROFILE " + twoHop},
	} {
		status, pr := postProfiled(t, ts, tc.path, tc.body)
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d (%s)", tc.name, status, pr.Error)
		}
		if pr.Profile == nil || pr.Profile.Plan == nil {
			t.Fatalf("%s: no profile in response", tc.name)
		}
		if pr.RequestID == "" {
			t.Errorf("%s: success body lacks request_id", tc.name)
		}
		phases := map[string]bool{}
		for _, ph := range pr.Profile.Phases {
			if ph.US < 0 {
				t.Errorf("%s: phase %s negative duration", tc.name, ph.Name)
			}
			phases[ph.Name] = true
		}
		for _, want := range []string{"parse", "plan", "execute"} {
			if !phases[want] {
				t.Errorf("%s: missing phase %q in %v", tc.name, want, pr.Profile.Phases)
			}
		}
		steps := pr.Profile.Plan.Steps
		if len(steps) != 3 { // scan Drug, expand treat, project
			t.Fatalf("%s: steps = %+v, want 3", tc.name, steps)
		}
		if steps[0].Op != "scan" || steps[0].Target != "Drug" {
			t.Errorf("%s: step0 = %+v", tc.name, steps[0])
		}
		// Per-step counters must sum to the response's coarse stats.
		if steps[0].Visited != pr.Stats.VerticesScanned {
			t.Errorf("%s: scan visited %d != vertices_scanned %d",
				tc.name, steps[0].Visited, pr.Stats.VerticesScanned)
		}
		if steps[1].Visited != pr.Stats.EdgesTraversed {
			t.Errorf("%s: expand visited %d != edges_traversed %d",
				tc.name, steps[1].Visited, pr.Stats.EdgesTraversed)
		}
		if steps[2].Produced != pr.Stats.RowsEmitted || steps[2].Produced != int64(len(pr.Rows)) {
			t.Errorf("%s: project produced %d, rows_emitted %d, rows %d",
				tc.name, steps[2].Produced, pr.Stats.RowsEmitted, len(pr.Rows))
		}
		// The executed text must not retain the PROFILE keyword.
		if strings.Contains(strings.ToUpper(pr.Query), "PROFILE") {
			t.Errorf("%s: executed text retains PROFILE: %q", tc.name, pr.Query)
		}
	}

	// Unprofiled requests carry no profile object.
	status, pr := postProfiled(t, ts, "/query", twoHop)
	if status != http.StatusOK || pr.Profile != nil {
		t.Errorf("unprofiled request returned a profile (status %d)", status)
	}

	// The second profiled request must see a plan-cache hit: PROFILE and
	// plain requests share the same canonical cache key.
	_, pr = postProfiled(t, ts, "/query?profile=1", twoHop)
	if pr.Profile == nil || !pr.Profile.PlanCacheHit {
		t.Error("second profiled request did not report a plan-cache hit")
	}
}

// TestSlowQueryLog: with a zero threshold and a sink every /query and
// /mutate request emits one JSON line carrying request ID, endpoint,
// latency, and (for profiled queries) the per-step trace; the counter
// tracks the log.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	mem := memstore.New()
	buildMedGraph(t, mem)
	s, err := New(Config{Graph: mem, SlowQueryLog: &buf, SlowQueryThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/query?profile=1", strings.NewReader(drugQuery))
	req.Header.Set("X-Request-Id", "slow-1")
	do(t, req)
	req, _ = http.NewRequest("POST", ts.URL+"/query", strings.NewReader("NOT CYPHER"))
	do(t, req) // parse errors do not reach the slow log

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want 1:\n%s", len(lines), buf.String())
	}
	var e struct {
		TS        string `json:"ts"`
		RequestID string `json:"request_id"`
		Endpoint  string `json:"endpoint"`
		Query     string `json:"query"`
		Status    int    `json:"status"`
		ElapsedUS int64  `json:"elapsed_us"`
		Stats     *struct {
			RowsEmitted int64 `json:"rows_emitted"`
		} `json:"stats"`
		Profile *struct {
			Steps []json.RawMessage `json:"steps"`
		} `json:"profile"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, lines[0])
	}
	if e.RequestID != "slow-1" || e.Endpoint != "/query" || e.Status != http.StatusOK {
		t.Errorf("entry = %+v", e)
	}
	if _, err := time.Parse(time.RFC3339Nano, e.TS); err != nil {
		t.Errorf("ts %q not RFC3339Nano: %v", e.TS, err)
	}
	if e.Query == "" || e.Stats == nil || e.Stats.RowsEmitted != 2 {
		t.Errorf("entry missing query/stats: %+v", e)
	}
	if e.Profile == nil || len(e.Profile.Steps) == 0 {
		t.Errorf("profiled request's log entry lacks the step trace")
	}
	if got := s.m.slowQueries.Load(); got != 1 {
		t.Errorf("slow query counter = %d, want 1", got)
	}

	// A threshold far above any latency suppresses logging but the
	// endpoint keeps working.
	buf.Reset()
	s.cfg.SlowQueryThreshold = time.Hour
	if status, qr := post(t, ts, drugQuery, "text/plain"); status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, qr.Error)
	}
	if buf.Len() != 0 {
		t.Errorf("fast request logged as slow:\n%s", buf.String())
	}
}

// TestStatsAndMetricsAgree: the JSON /stats view and the Prometheus
// exposition read the same registry — the accepted counter and the
// /query latency count must match between the two.
func TestStatsAndMetricsAgree(t *testing.T) {
	s, ts := newMedServer(t, Config{})
	for i := 0; i < 5; i++ {
		post(t, ts, drugQuery, "text/plain")
	}
	st := s.Stats()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	exp, err := obs.ParseExposition(data)
	if err != nil {
		t.Fatalf("strict parse: %v", err)
	}
	if got := exp.Samples[`pgs_server_requests_total{outcome="accepted"}`]; int64(got) != st.Admission.Accepted {
		t.Errorf("accepted: exposition %v != stats %d", got, st.Admission.Accepted)
	}
	if got := exp.Samples[`pgs_request_latency_seconds_count{endpoint="/query"}`]; int64(got) != st.Endpoints["/query"].Count {
		t.Errorf("/query count: exposition %v != stats %d", got, st.Endpoints["/query"].Count)
	}
	if got := exp.Samples["pgs_plancache_hits_total{}"]; int64(got) != st.PlanCache.Hits {
		t.Errorf("plancache hits: exposition %v != stats %d", got, st.PlanCache.Hits)
	}

	// The statistics-guard counters must agree between the two views, and
	// a backend with persisted statistics must populate the graph section
	// with real per-label counts.
	if got := exp.Samples["pgs_stats_bloom_skips_total{}"]; int64(got) != st.Bloom.Skips {
		t.Errorf("bloom skips: exposition %v != stats %d", got, st.Bloom.Skips)
	}
	if got := exp.Samples["pgs_stats_bloom_fp_total{}"]; int64(got) != st.Bloom.FP {
		t.Errorf("bloom fp: exposition %v != stats %d", got, st.Bloom.FP)
	}
	if st.Graph == nil {
		t.Fatal("stats lack the graph section on a statistics-reporting backend")
	}
	if st.Graph.Vertices <= 0 || len(st.Graph.LabelCounts) == 0 {
		t.Errorf("graph stats incomplete: %+v", st.Graph)
	}
	total := 0
	for _, n := range st.Graph.LabelCounts {
		total += n
	}
	if total < st.Graph.Vertices {
		t.Errorf("label counts sum %d < %d vertices", total, st.Graph.Vertices)
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
