package server

// Structured slow-query log: JSON-lines records for requests whose
// end-to-end latency reaches Config.SlowQueryThreshold. One line per
// slow request, self-contained — timestamp, request ID, endpoint,
// executed query text, status, latency, work counters, and the PROFILE
// trace when the request ran profiled — so the log can be shipped and
// grepped without joining against anything. The encoding runs on the
// cold path only (a request already slower than the threshold).

import (
	"encoding/json"
	"time"

	"repro/internal/query"
)

// slowLogEntry is one JSON line of the slow-query log.
type slowLogEntry struct {
	TS        string `json:"ts"` // RFC3339Nano, UTC
	RequestID string `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	// Query is the executed (post-rewrite, canonical) text; empty for
	// non-query endpoints.
	Query     string       `json:"query,omitempty"`
	Status    int          `json:"status"`
	ElapsedUS int64        `json:"elapsed_us"`
	Stats     *slowerStats `json:"stats,omitempty"`
	// Profile is present when the request ran with PROFILE enabled.
	Profile *query.Profile `json:"profile,omitempty"`
}

// slowerStats is query.Stats in the slow-log JSON shape.
type slowerStats struct {
	VerticesScanned int64 `json:"vertices_scanned"`
	EdgesTraversed  int64 `json:"edges_traversed"`
	PropsRead       int64 `json:"props_read"`
	RowsEmitted     int64 `json:"rows_emitted"`
}

// noteSlow checks one finished request against the slow-query threshold:
// at or over it, the slow-query counter increments and — when a log sink
// is configured — a JSON line is written. st and prof may be nil.
func (s *Server) noteSlow(endpoint, rid, text string, status int, elapsed time.Duration, st *query.Stats, prof *query.Profile) {
	if s.cfg.SlowQueryLog == nil && s.cfg.SlowQueryThreshold <= 0 {
		return
	}
	if elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	s.m.slowQueries.Inc()
	if s.cfg.SlowQueryLog == nil {
		return
	}
	e := slowLogEntry{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: rid,
		Endpoint:  endpoint,
		Query:     text,
		Status:    status,
		ElapsedUS: elapsed.Microseconds(),
		Profile:   prof,
	}
	if st != nil {
		e.Stats = &slowerStats{
			VerticesScanned: st.VerticesScanned,
			EdgesTraversed:  st.EdgesTraversed,
			PropsRead:       st.PropsRead,
			RowsEmitted:     st.RowsEmitted,
		}
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	// One writer at a time: keep each JSON line intact even when the sink
	// is a shared file.
	s.slowMu.Lock()
	s.cfg.SlowQueryLog.Write(line)
	s.slowMu.Unlock()
}
