package server

// POST /mutate — the durable live-write endpoint. One request is one
// atomic mutation batch: the backend WAL-logs and fsyncs it before the
// response is written, so a 200 means the batch survives any crash.
// Requests pass through the same admission semaphore as /query, so a
// mutation storm cannot starve reads beyond the configured concurrency
// and a saturated server sheds writers with 429 exactly like readers.
//
// Request JSON:
//
//	{
//	  "vertices": [{"labels": ["L"], "props": {"k": v}}],
//	  "edges":    [{"src": -1, "dst": 7, "type": "t"}],
//	  "props":    [{"v": 7, "key": "k", "value": v}],
//	  "labels":   [{"v": -1, "label": "L"}]
//	}
//
// Vertex references >= 0 are absolute vertex IDs; negative references
// are batch-relative (-1 is the first entry of "vertices", -2 the
// second, ...), so one request can create a vertex and wire it up.
// Values may be JSON null, bool, number (integral numbers store as
// ints), string, or a flat array of those.
//
// Responses: 200 with the assigned IDs; 400 on malformed input; 409 when
// the store is not in live-write mode (finalize it with Compact first);
// 501 when the backend has no durable write path (memstore).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/graph"
	"repro/internal/storage"
)

type mutateRequest struct {
	Vertices []mutateVertex `json:"vertices"`
	Edges    []mutateEdge   `json:"edges"`
	Props    []mutateProp   `json:"props"`
	Labels   []mutateLabel  `json:"labels"`
}

type mutateVertex struct {
	Labels []string                   `json:"labels"`
	Props  map[string]json.RawMessage `json:"props,omitempty"`
}

type mutateEdge struct {
	Src  int64  `json:"src"`
	Dst  int64  `json:"dst"`
	Type string `json:"type"`
}

type mutateProp struct {
	V     int64           `json:"v"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

type mutateLabel struct {
	V     int64  `json:"v"`
	Label string `json:"label"`
}

// mutateResponse is the POST /mutate 200 document.
type mutateResponse struct {
	Vertices  []storage.VID `json:"vertices"`
	Edges     []storage.EID `json:"edges"`
	ElapsedUS int64         `json:"elapsed_us"`
	RequestID string        `json:"request_id"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.m.mutate.Observe(time.Since(start)) }()
	rid := beginRequest(w, r)

	if s.draining.Load() {
		s.m.drained.Add(1)
		writeError(w, http.StatusServiceUnavailable, rid, "server is draining")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	release, status, err := s.admit(ctx)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, rid, err.Error())
		return
	}
	defer release()

	mg, ok := s.data.Load().graph.(storage.MutableGraph)
	if !ok {
		writeError(w, http.StatusNotImplemented, rid, "the served backend does not support durable live writes")
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.m.failed.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, rid,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, rid, fmt.Sprintf("read body: %v", err))
		return
	}
	var req mutateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.m.failed.Add(1)
		writeError(w, http.StatusBadRequest, rid, fmt.Sprintf("decode JSON body: %v", err))
		return
	}
	batch, err := req.toBatch()
	if err != nil {
		s.m.failed.Add(1)
		writeError(w, http.StatusBadRequest, rid, err.Error())
		return
	}
	if len(batch) == 0 {
		s.m.failed.Add(1)
		writeError(w, http.StatusBadRequest, rid, "empty mutation batch")
		return
	}

	res, err := mg.ApplyMutations(batch)
	if err != nil {
		s.m.failed.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, storage.ErrNotLive) {
			status = http.StatusConflict
		}
		writeError(w, status, rid, err.Error())
		s.noteSlow("/mutate", rid, "", status, time.Since(start), nil, nil)
		return
	}
	resp := mutateResponse{
		Vertices:  res.Vertices,
		Edges:     res.Edges,
		ElapsedUS: time.Since(start).Microseconds(),
		RequestID: rid,
	}
	if resp.Vertices == nil {
		resp.Vertices = []storage.VID{}
	}
	if resp.Edges == nil {
		resp.Edges = []storage.EID{}
	}
	s.maybeAutoCompact(mg)
	writeJSON(w, http.StatusOK, resp)
	s.noteSlow("/mutate", rid, "", http.StatusOK, time.Since(start), nil, nil)
}

// toBatch lowers the JSON document into one storage.Mutation batch:
// vertices first (so every negative reference in the other sections can
// resolve), then each vertex's inline props, then edges, props, labels
// in document order.
func (r *mutateRequest) toBatch() ([]storage.Mutation, error) {
	var batch []storage.Mutation
	var inlineProps []storage.Mutation
	for i, v := range r.Vertices {
		batch = append(batch, storage.Mutation{Op: storage.MutAddVertex, Labels: v.Labels})
		for key, raw := range v.Props {
			val, err := valueFromJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("vertices[%d].props[%s]: %w", i, key, err)
			}
			inlineProps = append(inlineProps, storage.Mutation{
				Op: storage.MutSetProp, V: storage.VID(-(i + 1)), Key: key, Value: val,
			})
		}
	}
	batch = append(batch, inlineProps...)
	for _, e := range r.Edges {
		batch = append(batch, storage.Mutation{
			Op: storage.MutAddEdge, Src: storage.VID(e.Src), Dst: storage.VID(e.Dst), Type: e.Type,
		})
	}
	for i, p := range r.Props {
		val, err := valueFromJSON(p.Value)
		if err != nil {
			return nil, fmt.Errorf("props[%d].value: %w", i, err)
		}
		batch = append(batch, storage.Mutation{
			Op: storage.MutSetProp, V: storage.VID(p.V), Key: p.Key, Value: val,
		})
	}
	for _, l := range r.Labels {
		batch = append(batch, storage.Mutation{Op: storage.MutAddLabel, V: storage.VID(l.V), Label: l.Label})
	}
	return batch, nil
}

// valueFromJSON converts one JSON value into a graph.Value. Numbers
// decode through json.Number so integral values stay exact int64s
// instead of rounding through float64.
func valueFromJSON(raw json.RawMessage) (graph.Value, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return graph.Null, err
	}
	return valueFromAny(v, true)
}

func valueFromAny(v any, allowList bool) (graph.Value, error) {
	switch x := v.(type) {
	case nil:
		return graph.Null, nil
	case bool:
		return graph.B(x), nil
	case string:
		return graph.S(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return graph.I(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return graph.Null, fmt.Errorf("unrepresentable number %q", x.String())
		}
		return graph.F(f), nil
	case []any:
		if !allowList {
			return graph.Null, errors.New("nested lists are not storable")
		}
		els := make([]graph.Value, 0, len(x))
		for _, el := range x {
			gv, err := valueFromAny(el, false)
			if err != nil {
				return graph.Null, err
			}
			els = append(els, gv)
		}
		return graph.L(els...), nil
	default:
		return graph.Null, fmt.Errorf("unsupported JSON value type %T (objects are not storable)", v)
	}
}
