package server

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds observations whose microsecond latency has bit length i, i.e.
// lies in [2^(i-1), 2^i). 40 buckets reach past 2^39 µs (~9 days), far
// beyond any request the per-request timeout lets live.
const histBuckets = 40

// Histogram is a fixed-size log2 latency histogram safe for concurrent
// Observe calls: every counter is atomic, so the hot path takes no locks
// and a /stats scrape never blocks a request.
type Histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1]):
// the top of the bucket holding the rank-q observation. Zero when nothing
// was observed. Concurrent Observes make the answer approximate — fine
// for a stats endpoint, which is its only caller.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			// Upper bound of bucket i: 2^i - 1 microseconds.
			return time.Duration((int64(1)<<i)-1) * time.Microsecond
		}
	}
	return time.Duration((int64(1)<<(histBuckets-1))-1) * time.Microsecond
}

// HistogramSnapshot is the JSON shape of one endpoint's latency summary
// in the /stats response.
type HistogramSnapshot struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
}

// Snapshot summarizes the histogram for the stats endpoint.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		P50US: h.Quantile(0.50).Microseconds(),
		P90US: h.Quantile(0.90).Microseconds(),
		P99US: h.Quantile(0.99).Microseconds(),
	}
	if s.Count > 0 {
		s.MeanUS = h.sumUS.Load() / s.Count
	}
	return s
}

// QueryShapeStats is one executed query text's latency summary in the
// /stats response.
type QueryShapeStats struct {
	Query string `json:"query"`
	HistogramSnapshot
}

// shapeTracker maintains one latency Histogram per executed (canonical,
// post-rewrite) query text, bounded to a fixed number of distinct shapes
// so hostile traffic cannot balloon it. The hot path is one RLock'd map
// lookup plus the histogram's atomic Observe; the write lock is taken
// only the first time a shape is seen. Shapes arriving past the capacity
// are counted in dropped rather than tracked.
type shapeTracker struct {
	mu      sync.RWMutex
	shapes  map[string]*Histogram
	cap     int
	dropped atomic.Int64
}

func newShapeTracker(capacity int) *shapeTracker {
	return &shapeTracker{shapes: make(map[string]*Histogram), cap: capacity}
}

func (t *shapeTracker) observe(text string, d time.Duration) {
	t.mu.RLock()
	h := t.shapes[text]
	t.mu.RUnlock()
	if h == nil {
		t.mu.Lock()
		if h = t.shapes[text]; h == nil {
			if len(t.shapes) >= t.cap {
				t.mu.Unlock()
				t.dropped.Add(1)
				return
			}
			h = &Histogram{}
			t.shapes[text] = h
		}
		t.mu.Unlock()
	}
	h.Observe(d)
}

// top returns the k tracked shapes with the highest p99 latency,
// worst first (ties broken by count, then query text, for a stable
// /stats response).
func (t *shapeTracker) top(k int) []QueryShapeStats {
	t.mu.RLock()
	out := make([]QueryShapeStats, 0, len(t.shapes))
	for text, h := range t.shapes {
		out = append(out, QueryShapeStats{Query: text, HistogramSnapshot: h.Snapshot()})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].P99US != out[j].P99US {
			return out[i].P99US > out[j].P99US
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Query < out[j].Query
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// metrics is the server's counter set. Counters are atomics written on
// the request path and read, racily but consistently enough, by /stats.
type metrics struct {
	accepted atomic.Int64 // requests that won an execution slot
	shed     atomic.Int64 // 429s: queue full at arrival
	drained  atomic.Int64 // 503s sent because the server is draining
	timeouts atomic.Int64 // request deadline expired (queued or mid-query)
	canceled atomic.Int64 // client went away (queued or mid-query)
	failed   atomic.Int64 // 4xx/5xx other than shed/drain/timeout
	inflight atomic.Int64 // currently executing
	queued   atomic.Int64 // currently waiting for a slot

	query   Histogram
	mutate  Histogram
	compact Histogram
	healthz Histogram
	stats   Histogram
}
