package server

// The server's metric set, built on the central internal/obs registry.
// Request-path counters and latency histograms are registered eagerly at
// New; subsystems that keep their own atomics (plan cache, pager, WAL,
// compaction) are bridged with func-backed series read at scrape time —
// through s.data.Load(), so a Swap retargets every bridge atomically.
// GET /metrics writes the registry in Prometheus text format; GET /stats
// renders the same counters as JSON.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
)

// Histogram and HistogramSnapshot are the obs types; aliased so the
// /stats JSON shape and the shape tracker keep their existing names.
type (
	Histogram         = obs.Histogram
	HistogramSnapshot = obs.HistogramSnapshot
)

// metrics is the server's registered metric set. Counters are written on
// the request path and read by /metrics and /stats scrapes.
type metrics struct {
	reg *obs.Registry

	// Admission outcomes: pgs_server_requests_total{outcome}.
	accepted *obs.Counter // requests that won an execution slot
	shed     *obs.Counter // 429s: queue full at arrival
	drained  *obs.Counter // 503s sent because the server is draining
	timeouts *obs.Counter // request deadline expired (queued or mid-query)
	canceled *obs.Counter // client went away (queued or mid-query)
	failed   *obs.Counter // 4xx/5xx other than shed/drain/timeout

	inflight *obs.Gauge // currently executing
	queued   *obs.Gauge // currently waiting for a slot

	// Per-endpoint latency: pgs_request_latency_seconds{endpoint}.
	query   *Histogram
	mutate  *Histogram
	compact *Histogram
	healthz *Histogram
	stats   *Histogram

	// Query work totals across all requests (the per-request values ride
	// in the response body): pgs_query_*_total.
	qVertices *obs.Counter
	qEdges    *obs.Counter
	qProps    *obs.Counter
	qRows     *obs.Counter

	slowQueries *obs.Counter
}

// newMetrics registers the server's own series into a fresh registry.
// Func-backed bridges to the plan cache and the served store are added
// separately (registerBridges) once the Server exists.
func newMetrics() metrics {
	reg := obs.NewRegistry()
	outcome := func(v string) *obs.Counter {
		return reg.NewCounter("pgs_server_requests_total",
			"Requests by admission outcome.", obs.L("outcome", v))
	}
	lat := func(endpoint string) *Histogram {
		return reg.NewHistogram("pgs_request_latency_seconds",
			"End-to-end request latency by endpoint.", obs.L("endpoint", endpoint))
	}
	return metrics{
		reg:      reg,
		accepted: outcome("accepted"),
		shed:     outcome("shed"),
		drained:  outcome("drained"),
		timeouts: outcome("timeout"),
		canceled: outcome("canceled"),
		failed:   outcome("failed"),
		inflight: reg.NewGauge("pgs_server_inflight", "Requests currently executing."),
		queued:   reg.NewGauge("pgs_server_queued", "Requests waiting for an execution slot."),
		query:    lat("/query"),
		mutate:   lat("/mutate"),
		compact:  lat("/admin/compact"),
		healthz:  lat("/healthz"),
		stats:    lat("/stats"),
		qVertices: reg.NewCounter("pgs_query_vertices_scanned_total",
			"Vertices scanned by all executed queries."),
		qEdges: reg.NewCounter("pgs_query_edges_traversed_total",
			"Edges traversed by all executed queries."),
		qProps: reg.NewCounter("pgs_query_props_read_total",
			"Property reads by all executed queries."),
		qRows: reg.NewCounter("pgs_query_rows_emitted_total",
			"Rows emitted by all executed queries."),
		slowQueries: reg.NewCounter("pgs_server_slow_queries_total",
			"Requests at or over the slow-query threshold."),
	}
}

// registerBridges adds the func-backed series that read other subsystems'
// own counters at scrape time. Every closure loads the served graph
// through s.data, so the bridges follow a Swap without re-registration;
// backends without the relevant reporter interface read as 0.
func (s *Server) registerBridges() {
	reg := s.m.reg

	reg.GaugeFunc("pgs_server_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Plan cache.
	cacheStat := func(pick func(s PlanCacheStats) float64) func() float64 {
		return func() float64 {
			cs := s.cache.Stats()
			return pick(PlanCacheStats{
				Hits: cs.Hits, Misses: cs.Misses, Shared: cs.Shared,
				Size: cs.Size, Capacity: cs.Capacity,
			})
		}
	}
	reg.CounterFunc("pgs_plancache_hits_total", "Plan-cache lookups served from cache.",
		cacheStat(func(c PlanCacheStats) float64 { return float64(c.Hits) }))
	reg.CounterFunc("pgs_plancache_misses_total", "Plan-cache lookups that found no ready plan.",
		cacheStat(func(c PlanCacheStats) float64 { return float64(c.Misses) }))
	reg.CounterFunc("pgs_plancache_shared_total", "Cold lookups served by an in-flight compile.",
		cacheStat(func(c PlanCacheStats) float64 { return float64(c.Shared) }))
	reg.GaugeFunc("pgs_plancache_size", "Plans currently cached.",
		cacheStat(func(c PlanCacheStats) float64 { return float64(c.Size) }))
	reg.GaugeFunc("pgs_plancache_capacity", "Plan-cache capacity.",
		cacheStat(func(c PlanCacheStats) float64 { return float64(c.Capacity) }))

	// Query-shape tracker overflow.
	reg.CounterFunc("pgs_server_query_shapes_dropped_total",
		"Shape-latency observations dropped because the tracker was full.",
		func() float64 { return float64(s.shapes.dropped.Load()) })

	// Pager I/O (diskstore; memstore reads as 0).
	pager := func(pick func(storage.Stats) int64) func() float64 {
		return func() float64 {
			if sr, ok := s.data.Load().graph.(storage.StatsReporter); ok {
				return float64(pick(sr.Stats()))
			}
			return 0
		}
	}
	reg.CounterFunc("pgs_pager_page_hits_total", "Page-cache hits.",
		pager(func(ps storage.Stats) int64 { return ps.PageHits }))
	reg.CounterFunc("pgs_pager_page_misses_total", "Page-cache misses.",
		pager(func(ps storage.Stats) int64 { return ps.PageMisses }))
	reg.CounterFunc("pgs_pager_page_reads_total", "Pages read from disk.",
		pager(func(ps storage.Stats) int64 { return ps.PageReads }))
	reg.CounterFunc("pgs_pager_page_writes_total", "Pages written to disk.",
		pager(func(ps storage.Stats) int64 { return ps.PageWrites }))

	// Live-write storage: WAL, delta segment, compaction.
	live := func(pick func(storage.LiveStats) float64) func() float64 {
		return func() float64 {
			if lr, ok := s.data.Load().graph.(storage.LiveStatsReporter); ok {
				return pick(lr.LiveStats())
			}
			return 0
		}
	}
	reg.CounterFunc("pgs_wal_appends_total", "Mutation batches appended to the WAL.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.WALAppends) }))
	reg.CounterFunc("pgs_wal_syncs_total", "WAL fsyncs (group commits).",
		live(func(ls storage.LiveStats) float64 { return float64(ls.WALSyncs) }))
	reg.CounterFunc("pgs_wal_bytes_total", "Bytes appended to the WAL.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.WALBytes) }))
	reg.CounterFunc("pgs_wal_sync_seconds_total", "Cumulative WAL fsync time.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.WALSyncNanos) / 1e9 }))
	reg.GaugeFunc("pgs_delta_vertices", "Vertices in the live delta segment.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.DeltaVertices) }))
	reg.GaugeFunc("pgs_delta_edges", "Edges in the live delta segment.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.DeltaEdges) }))
	reg.GaugeFunc("pgs_compact_generation", "Base file-set generation serving reads.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.Generation) }))
	reg.GaugeFunc("pgs_compact_fold_running", "1 while a background fold runs.",
		live(func(ls storage.LiveStats) float64 {
			if ls.FoldRunning {
				return 1
			}
			return 0
		}))
	reg.GaugeFunc("pgs_compact_fold_progress_permille", "Background fold progress, 0-1000.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.FoldProgress) }))
	reg.GaugeFunc("pgs_compact_pinned_snapshots", "Acquired-but-unreleased store snapshots.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.PinnedSnapshots) }))
	reg.CounterFunc("pgs_compact_folds_total", "Folds committed since the store opened.",
		live(func(ls storage.LiveStats) float64 { return float64(ls.Compactions) }))

	// Statistics-guarded root scans (the query package keeps these
	// process-wide, mirroring the /stats bloom section).
	reg.CounterFunc("pgs_stats_bloom_skips_total",
		"Root label scans skipped because persisted statistics proved them empty.",
		func() float64 { return float64(query.BloomSkips()) })
	reg.CounterFunc("pgs_stats_bloom_fp_total",
		"Guarded root scans that ran anyway and matched nothing (bloom false positives).",
		func() float64 { return float64(query.BloomFP()) })
}

// QueryShapeStats is one executed query text's latency summary in the
// /stats response.
type QueryShapeStats struct {
	Query string `json:"query"`
	HistogramSnapshot
}

// shapeTracker maintains one latency Histogram per executed (canonical,
// post-rewrite) query text, bounded to a fixed number of distinct shapes
// so hostile traffic cannot balloon it. The hot path is one RLock'd map
// lookup plus the histogram's atomic Observe; the write lock is taken
// only the first time a shape is seen. Shapes arriving past the capacity
// are counted in dropped rather than tracked. Shape histograms stay out
// of the Prometheus registry on purpose: an unbounded-cardinality label
// (query text) has no place in an exposition; /stats reports the top-N.
type shapeTracker struct {
	mu      sync.RWMutex
	shapes  map[string]*Histogram
	cap     int
	dropped atomic.Int64
}

func newShapeTracker(capacity int) *shapeTracker {
	return &shapeTracker{shapes: make(map[string]*Histogram), cap: capacity}
}

func (t *shapeTracker) observe(text string, d time.Duration) {
	t.mu.RLock()
	h := t.shapes[text]
	t.mu.RUnlock()
	if h == nil {
		t.mu.Lock()
		if h = t.shapes[text]; h == nil {
			if len(t.shapes) >= t.cap {
				t.mu.Unlock()
				t.dropped.Add(1)
				return
			}
			h = &Histogram{}
			t.shapes[text] = h
		}
		t.mu.Unlock()
	}
	h.Observe(d)
}

// top returns the k tracked shapes with the highest p99 latency,
// worst first (ties broken by count, then query text, for a stable
// /stats response).
func (t *shapeTracker) top(k int) []QueryShapeStats {
	t.mu.RLock()
	out := make([]QueryShapeStats, 0, len(t.shapes))
	for text, h := range t.shapes {
		out = append(out, QueryShapeStats{Query: text, HistogramSnapshot: h.Snapshot()})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].P99US != out[j].P99US {
			return out[i].P99US > out[j].P99US
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Query < out[j].Query
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
