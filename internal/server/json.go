package server

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/graph"
	"repro/internal/query"
)

// encoder is a reusable JSON output buffer. The /query hot path rents one
// from encPool, appends the whole response body into enc.buf with the
// Append* helpers below (no reflection, no intermediate allocations), and
// returns it — so steady-state request encoding is allocation-flat.
type encoder struct {
	buf []byte
}

// maxPooledEncoder caps the buffer size returned to the pool; a one-off
// huge result should not pin megabytes inside it forever.
const maxPooledEncoder = 1 << 20

var encPool = sync.Pool{New: func() any { return &encoder{buf: make([]byte, 0, 4096)} }}

func getEncoder() *encoder {
	e := encPool.Get().(*encoder)
	e.buf = e.buf[:0]
	return e
}

func putEncoder(e *encoder) {
	if cap(e.buf) <= maxPooledEncoder {
		encPool.Put(e)
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes, and control characters. Invalid UTF-8 bytes are replaced
// so the output is always valid JSON.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"' || c == '\\':
				dst = append(dst, '\\', c)
			case c == '\n':
				dst = append(dst, '\\', 'n')
			case c == '\r':
				dst = append(dst, '\\', 'r')
			case c == '\t':
				dst = append(dst, '\\', 't')
			case c < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				dst = append(dst, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// appendJSONValue appends a graph.Value as its natural JSON form: NULL →
// null, STRING → string, INT/DOUBLE → number (non-finite doubles → null,
// which JSON cannot represent), BOOLEAN → bool, LIST → array.
func appendJSONValue(dst []byte, v graph.Value) []byte {
	switch v.Kind() {
	case graph.KindString:
		return appendJSONString(dst, v.Str())
	case graph.KindInt:
		return strconv.AppendInt(dst, v.Int(), 10)
	case graph.KindFloat:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return append(dst, "null"...)
		}
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	case graph.KindBool:
		return strconv.AppendBool(dst, v.Bool())
	case graph.KindList:
		dst = append(dst, '[')
		for i, e := range v.List() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONValue(dst, e)
		}
		return append(dst, ']')
	default:
		return append(dst, "null"...)
	}
}

// appendQueryResponse renders the whole POST /query success body.
// profileJSON, when non-nil, is a pre-marshaled profile object appended
// verbatim as the "profile" field (the PROFILE cold path).
func appendQueryResponse(dst []byte, executed, rid string, res *query.Result, st *query.Stats, elapsedUS int64, profileJSON []byte) []byte {
	dst = append(dst, `{"query":`...)
	dst = appendJSONString(dst, executed)
	dst = append(dst, `,"request_id":`...)
	dst = appendJSONString(dst, rid)
	dst = append(dst, `,"columns":[`...)
	for i, c := range res.Columns {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, c)
	}
	dst = append(dst, `],"rows":[`...)
	for i, row := range res.Rows {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '[')
		for j, v := range row {
			if j > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONValue(dst, v)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `],"stats":{"vertices_scanned":`...)
	dst = strconv.AppendInt(dst, st.VerticesScanned, 10)
	dst = append(dst, `,"edges_traversed":`...)
	dst = strconv.AppendInt(dst, st.EdgesTraversed, 10)
	dst = append(dst, `,"props_read":`...)
	dst = strconv.AppendInt(dst, st.PropsRead, 10)
	dst = append(dst, `,"rows_emitted":`...)
	dst = strconv.AppendInt(dst, st.RowsEmitted, 10)
	dst = append(dst, `},"elapsed_us":`...)
	dst = strconv.AppendInt(dst, elapsedUS, 10)
	if profileJSON != nil {
		dst = append(dst, `,"profile":`...)
		dst = append(dst, profileJSON...)
	}
	return append(dst, '}')
}
