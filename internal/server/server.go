// Package server is the network-facing query service: it exposes one
// loaded property graph (direct or optimized schema) over HTTP, running
// incoming Cypher through the same rewrite → plan-cache → compiled-plan
// pipeline the offline tools use, hardened for concurrent load.
//
// Endpoints:
//
//	POST /query   — Cypher in (raw text or {"query": "..."}), JSON rows,
//	                work counters, and the executed (rewritten) text out
//	POST /mutate  — one atomic, WAL-durable mutation batch (backends
//	                implementing storage.MutableGraph; others answer 501)
//	GET  /healthz — liveness: {"status":"ok"} while serving
//	GET  /stats   — admission counters, plan-cache, pager and live-write
//	                storage stats, and per-endpoint latency histograms
//	GET  /metrics — the same registry in Prometheus text exposition
//
// Observability: every request carries an X-Request-Id (client-sent and
// sane, or generated), echoed in the response header and every error
// body. A query sent with ?profile=1 or a leading PROFILE keyword
// returns a per-phase trace (parse, rewrite, plan, execute) and the
// executor's per-step operator counters. Requests at or over
// Config.SlowQueryThreshold are counted and, when Config.SlowQueryLog is
// set, logged as JSON lines.
//
// Load hardening: a bounded admission semaphore (MaxConcurrent executing,
// at most MaxQueued waiting; beyond that requests shed with 429), a
// per-request timeout enforced by context cancellation inside the query
// executor, request-body and query-length limits so hostile input cannot
// balloon the plan-cache key space, and a sync.Pool-recycled JSON encoder
// that keeps the hot response path allocation-flat. Shutdown drains:
// in-flight requests finish (bounded by the request timeout), new ones
// get 503.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// Config sizes a Server. The zero value of every limit field picks the
// package default; Graph is the only mandatory field.
type Config struct {
	// Graph is the store to serve. It must be fully built (the Builder
	// contract) and safe for concurrent readers; both backends are.
	Graph storage.Graph
	// Mapping, when non-nil, is the optimizer's schema mapping: incoming
	// queries are rewritten through it before execution, exactly like
	// pgsquery's OPT side. Nil serves the direct schema.
	Mapping *core.Mapping
	// RewriteOpts tunes the rewriter (e.g. LocalizeScalarLookups).
	RewriteOpts rewrite.Options

	// MaxConcurrent bounds queries executing at once (default
	// DefaultMaxConcurrent).
	MaxConcurrent int
	// MaxQueued bounds queries waiting for an execution slot; arrivals
	// beyond it shed with 429 instead of queueing unboundedly (default
	// DefaultMaxQueued).
	MaxQueued int
	// RequestTimeout bounds one request end to end, queue wait included;
	// expiry cancels the executor mid-traversal (default
	// DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds the request body (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxQueryLen bounds the query text in bytes, capping the plan-cache
	// key space a hostile client can allocate (default
	// DefaultMaxQueryLen).
	MaxQueryLen int
	// PlanCacheSize bounds the plan cache (default
	// query.DefaultCacheCapacity).
	PlanCacheSize int
	// TopQueries is how many query shapes /stats reports, highest p99
	// first (default DefaultTopQueries).
	TopQueries int
	// MaxQueryShapes bounds the distinct executed query texts tracked for
	// the top-queries report; shapes beyond it are counted as dropped
	// instead of tracked (default DefaultMaxQueryShapes).
	MaxQueryShapes int
	// AutoCompactDeltaItems, when > 0, starts a background compaction
	// after an acknowledged /mutate batch leaves the store's delta
	// segment holding at least this many vertices + edges. Folds are
	// single-flight; 0 disables auto-compaction (POST /admin/compact
	// still works).
	AutoCompactDeltaItems int64
	// QueryWorkers caps morsel-driven intra-query parallelism: each
	// admitted query may fan its root scan out over up to this many
	// worker goroutines (plans and labels below the planner's thresholds
	// stay serial regardless). It composes with admission — total
	// traversal goroutines stay bounded by MaxConcurrent × QueryWorkers —
	// so operators size the two knobs together (default
	// DefaultQueryWorkers, i.e. serial).
	QueryWorkers int
	// SlowQueryThreshold marks /query and /mutate requests at or over
	// this end-to-end latency as slow: they increment
	// pgs_server_slow_queries_total and, when SlowQueryLog is set, emit a
	// JSON line. 0 with a SlowQueryLog set logs every request (useful in
	// tests); 0 without one disables the feature.
	SlowQueryThreshold time.Duration
	// SlowQueryLog, when non-nil, receives one JSON line per slow request
	// (see slowlog.go for the record shape). Writes are serialized by the
	// server; the writer itself need not be concurrency-safe.
	SlowQueryLog io.Writer
}

// Defaults for the Config limit fields.
const (
	DefaultMaxConcurrent  = 16
	DefaultMaxQueued      = 64
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxBodyBytes   = 1 << 20 // 1 MiB
	DefaultMaxQueryLen    = 8 << 10 // 8 KiB
	DefaultTopQueries     = 5
	DefaultMaxQueryShapes = 256
	DefaultQueryWorkers   = 1
)

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = DefaultMaxQueued
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxQueryLen <= 0 {
		c.MaxQueryLen = DefaultMaxQueryLen
	}
	if c.TopQueries <= 0 {
		c.TopQueries = DefaultTopQueries
	}
	if c.MaxQueryShapes <= 0 {
		c.MaxQueryShapes = DefaultMaxQueryShapes
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = DefaultQueryWorkers
	}
	return c
}

// dataset is the atomically swappable (graph, mapping) pair a Server
// serves; Swap installs a new one without stopping traffic.
type dataset struct {
	graph   storage.Graph
	mapping *core.Mapping
}

// Server serves one property graph over HTTP. Create with New, expose via
// Handler (tests) or Start/Shutdown (a real listener with draining).
type Server struct {
	cfg   Config
	data  atomic.Pointer[dataset]
	cache *query.Cache
	mux   *http.ServeMux

	// swapMu orders dataset swaps against the load-dataset → fetch-plan
	// window of the request path: requests hold the read side across
	// that window, Swap holds the write side across replace + purge, so
	// no compile for the outgoing graph can begin after its purge (which
	// would re-insert a plan for a graph the server no longer serves).
	swapMu sync.RWMutex

	sem      chan struct{} // execution slots
	draining atomic.Bool
	started  time.Time
	m        metrics
	shapes   *shapeTracker
	compact  compactState
	slowMu   sync.Mutex // serializes slow-query log lines

	httpSrv *http.Server
}

// New builds a Server for cfg.Graph. It validates the config but opens no
// listener; call Start, or mount Handler yourself.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, errors.New("server: Config.Graph is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   query.NewCache(cfg.PlanCacheSize),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		started: time.Now(),
		m:       newMetrics(),
		shapes:  newShapeTracker(cfg.MaxQueryShapes),
	}
	s.data.Store(&dataset{graph: cfg.Graph, mapping: cfg.Mapping})
	s.registerBridges()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /mutate", s.handleMutate)
	s.mux.HandleFunc("POST /admin/compact", s.handleCompact)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the server's HTTP handler; useful for tests and for
// mounting under an outer mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the plan cache (stats, tests).
func (s *Server) Cache() *query.Cache { return s.cache }

// Swap atomically replaces the served dataset and purges the old graph's
// plans from the cache, so a dataset reload does not leak plan memory
// until LRU pressure. In-flight requests finish against the graph they
// started on; Swap waits (briefly — at most one plan fetch) for requests
// mid-way between loading the dataset and fetching their plan, so no
// plan for the outgoing graph can enter the cache after the purge.
// Returns the number of plans purged.
func (s *Server) Swap(g storage.Graph, m *core.Mapping) int {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.data.Swap(&dataset{graph: g, mapping: m})
	return s.cache.Purge(old.graph)
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine, returning the bound address. Use Shutdown to stop.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		// Bound the whole request read: without this a client that opens
		// a request and trickles its body would pin an execution slot
		// forever (io.ReadAll in readQuery is not context-aware), and
		// MaxConcurrent such sockets would shed all legitimate traffic.
		ReadTimeout: s.cfg.RequestTimeout,
	}
	go s.httpSrv.Serve(lis)
	return lis.Addr().String(), nil
}

// Shutdown drains the server: the listener closes, new requests are
// refused (in-process callers of Handler get 503), and in-flight requests
// run to completion — each bounded by the request timeout — before
// Shutdown returns. ctx bounds the total wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// A background fold started via /admin/compact (or auto-compaction)
	// must finish before the caller closes the store underneath it.
	s.compact.wg.Wait()
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// ---- admission control ----

// errSaturated is the 429 shed condition: all execution slots busy and
// the wait queue full.
var errSaturated = errors.New("server saturated: all execution slots busy and queue full")

// admit acquires an execution slot, waiting in the bounded queue if all
// slots are busy. It returns a release func on success, or the HTTP
// status and error to send: 429 when the queue is full (shedding beats
// queueing unboundedly), 503/504 when the caller's context ends first.
func (s *Server) admit(ctx context.Context) (release func(), status int, err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		// No free slot: join the queue if it has room.
		if s.m.queued.Add(1) > int64(s.cfg.MaxQueued) {
			s.m.queued.Add(-1)
			s.m.shed.Add(1)
			return nil, http.StatusTooManyRequests, errSaturated
		}
		select {
		case s.sem <- struct{}{}:
			s.m.queued.Add(-1)
		case <-ctx.Done():
			s.m.queued.Add(-1)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.m.timeouts.Add(1)
				return nil, http.StatusGatewayTimeout, fmt.Errorf("timed out waiting for an execution slot: %w", ctx.Err())
			}
			s.m.canceled.Add(1)
			return nil, http.StatusServiceUnavailable, fmt.Errorf("request abandoned while queued: %w", ctx.Err())
		}
	}
	s.m.accepted.Add(1)
	s.m.inflight.Add(1)
	return func() {
		s.m.inflight.Add(-1)
		<-s.sem
	}, 0, nil
}

// ---- handlers ----

// tracePhase is one timed phase of a profiled request.
type tracePhase struct {
	Name string `json:"name"`
	US   int64  `json:"us"`
}

// queryTrace is the "profile" object of a profiled /query response.
type queryTrace struct {
	// Phases times the request pipeline: parse, rewrite (when a mapping
	// is configured), plan (cache fetch or compile), execute.
	Phases       []tracePhase `json:"phases"`
	PlanCacheHit bool         `json:"plan_cache_hit"`
	// SnapshotGeneration is the base file-set generation the query read
	// (live backends only).
	SnapshotGeneration int64 `json:"snapshot_generation,omitempty"`
	// Plan is the executor's per-step operator trace.
	Plan *query.Profile `json:"plan"`
}

// stripProfilePrefix detects the PROFILE query prefix (case-insensitive,
// followed by whitespace) and returns the bare query.
func stripProfilePrefix(src string) (string, bool) {
	const kw = "PROFILE"
	if len(src) > len(kw) && strings.EqualFold(src[:len(kw)], kw) {
		rest := strings.TrimLeft(src[len(kw):], " \t\r\n")
		if len(rest) < len(src)-len(kw) { // at least one space followed
			return rest, true
		}
	}
	return src, false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.m.query.Observe(time.Since(start)) }()
	rid := beginRequest(w, r)

	if s.draining.Load() {
		s.m.drained.Add(1)
		writeError(w, http.StatusServiceUnavailable, rid, "server is draining")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Shed before touching the body: a saturated server should spend as
	// close to zero work as possible on requests it will reject.
	release, status, err := s.admit(ctx)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, rid, err.Error())
		return
	}
	defer release()

	src, status, err := s.readQuery(w, r)
	if err != nil {
		s.m.failed.Add(1)
		writeError(w, status, rid, err.Error())
		return
	}
	// PROFILE mode: ?profile=1 or a leading PROFILE keyword.
	profiled := false
	if v := r.URL.Query().Get("profile"); v == "1" || v == "true" {
		profiled = true
	}
	if bare, ok := stripProfilePrefix(src); ok {
		src, profiled = bare, true
	}
	var trace *queryTrace
	phase := func(name string, since time.Time) {
		if trace != nil {
			trace.Phases = append(trace.Phases, tracePhase{Name: name, US: time.Since(since).Microseconds()})
		}
	}
	if profiled {
		trace = &queryTrace{Phases: make([]tracePhase, 0, 4)}
	}

	parseStart := time.Now()
	parsed, err := cypher.Parse(src)
	if err != nil {
		s.m.failed.Add(1)
		writeError(w, http.StatusBadRequest, rid, fmt.Sprintf("parse: %v", err))
		return
	}
	phase("parse", parseStart)
	// The swap read-lock covers dataset load through plan fetch, so a
	// concurrent Swap cannot purge the graph between the two (see Swap).
	s.swapMu.RLock()
	d := s.data.Load()
	executed := parsed
	if d.mapping != nil {
		rwStart := time.Now()
		executed, _, err = rewrite.Rewrite(parsed, d.mapping, s.cfg.RewriteOpts)
		if err != nil {
			s.swapMu.RUnlock()
			s.m.failed.Add(1)
			writeError(w, http.StatusBadRequest, rid, fmt.Sprintf("rewrite: %v", err))
			return
		}
		phase("rewrite", rwStart)
	}
	// Render the canonical text once; it serves as the cache key (Get,
	// unlike GetParsed, renders nothing per call), the response's
	// executed-query field, and the per-shape latency key — so the top-N
	// report groups requests that execute identically, whatever their
	// source formatting.
	text := executed.String()
	planStart := time.Now()
	plan, cacheHit, err := s.cache.GetWithInfo(d.graph, text)
	s.swapMu.RUnlock()
	if err != nil {
		s.m.failed.Add(1)
		writeError(w, http.StatusBadRequest, rid, fmt.Sprintf("compile: %v", err))
		return
	}
	phase("plan", planStart)
	if trace != nil {
		trace.PlanCacheHit = cacheHit
		if lr, ok := d.graph.(storage.LiveStatsReporter); ok {
			trace.SnapshotGeneration = lr.LiveStats().Generation
		}
	}
	// Track the shape only once a plan exists: uncompilable texts must
	// not occupy the bounded tracker — top_queries reports *executed*
	// shapes (timeouts and execution failures included). The clock starts
	// here, not at handler entry: queue wait under saturation is the
	// aggressor's cost, and attributing it to whichever shape happened to
	// be waiting would finger the victims in the top-N report. (The
	// /query endpoint histogram still measures end-to-end latency.)
	execStart := time.Now()
	defer func() { s.shapes.observe(text, time.Since(execStart)) }()

	var st query.Stats
	var res *query.Result
	if trace != nil {
		res, trace.Plan, err = plan.ExecuteParallelContextProfiled(ctx, s.cfg.QueryWorkers, &st)
	} else {
		res, err = plan.ExecuteParallelContextWithStats(ctx, s.cfg.QueryWorkers, &st)
	}
	phase("execute", execStart)
	s.m.qVertices.Add(st.VerticesScanned)
	s.m.qEdges.Add(st.EdgesTraversed)
	s.m.qProps.Add(st.PropsRead)
	s.m.qRows.Add(st.RowsEmitted)
	if err != nil {
		var status int
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.m.timeouts.Add(1)
			status = http.StatusGatewayTimeout
			writeError(w, status, rid, "query exceeded the request timeout")
		case errors.Is(err, context.Canceled):
			// The client is gone; the status is written into the void but
			// keeps the connection state machine honest.
			s.m.canceled.Add(1)
			status = http.StatusServiceUnavailable
			writeError(w, status, rid, "request canceled")
		default:
			s.m.failed.Add(1)
			status = http.StatusInternalServerError
			writeError(w, status, rid, fmt.Sprintf("execute: %v", err))
		}
		s.noteSlow("/query", rid, text, status, time.Since(start), &st, traceProfile(trace))
		return
	}

	var profileJSON []byte
	if trace != nil {
		// Cold path by definition; reflection-based marshaling is fine.
		profileJSON, err = json.Marshal(trace)
		if err != nil {
			s.m.failed.Add(1)
			writeError(w, http.StatusInternalServerError, rid, fmt.Sprintf("encode profile: %v", err))
			return
		}
	}
	enc := getEncoder()
	enc.buf = appendQueryResponse(enc.buf, text, rid, res, &st, time.Since(start).Microseconds(), profileJSON)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(enc.buf)))
	w.Write(enc.buf)
	putEncoder(enc)
	s.noteSlow("/query", rid, text, http.StatusOK, time.Since(start), &st, traceProfile(trace))
}

// traceProfile unwraps the executor profile from a trace that may be nil.
func traceProfile(t *queryTrace) *query.Profile {
	if t == nil {
		return nil
	}
	return t.Plan
}

// readQuery extracts the Cypher text from the request body: a JSON
// {"query": "..."} document when the Content-Type says JSON, raw text
// otherwise. It enforces the body-size and query-length limits.
func (s *Server) readQuery(w http.ResponseWriter, r *http.Request) (string, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return "", http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return "", http.StatusBadRequest, fmt.Errorf("read body: %w", err)
	}
	src := string(body)
	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct == "application/json" {
		var req struct {
			Query string `json:"query"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return "", http.StatusBadRequest, fmt.Errorf("decode JSON body: %w", err)
		}
		src = req.Query
	}
	src = strings.TrimSpace(src)
	if src == "" {
		return "", http.StatusBadRequest, errors.New("empty query")
	}
	if len(src) > s.cfg.MaxQueryLen {
		return "", http.StatusRequestEntityTooLarge,
			fmt.Errorf("query length %d exceeds %d bytes", len(src), s.cfg.MaxQueryLen)
	}
	return src, 0, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.m.healthz.Observe(time.Since(start)) }()
	beginRequest(w, r)
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.started).Seconds()),
	})
}

// StatsResponse is the GET /stats JSON document.
type StatsResponse struct {
	UptimeS   int64          `json:"uptime_s"`
	Admission AdmissionStats `json:"admission"`
	PlanCache PlanCacheStats `json:"plan_cache"`
	// Pager is present only when the backend reports I/O statistics
	// (diskstore does, memstore does not).
	Pager *PagerStats `json:"pager,omitempty"`
	// Storage is present only when the backend reports live-write state
	// (diskstore does, memstore does not): whether the store accepts
	// POST /mutate, whether base traversals still run on the segmented
	// fast path, the delta-segment gauges, and WAL activity including
	// mean fsync latency.
	Storage *StorageStats `json:"storage,omitempty"`
	// Graph is present only when the backend persists statistics
	// (storage.Statistics): per-label vertex counts and per-type edge
	// counts — the same numbers optimizer.FromStorage feeds Equation 5.
	Graph *GraphStats `json:"graph,omitempty"`
	// Bloom reports the statistics-guarded root scans: probes the bloom
	// filters proved empty (skipped without scanning) and guarded scans
	// that ran anyway and matched nothing (observable false positives).
	Bloom     BloomStats                   `json:"bloom"`
	Endpoints map[string]HistogramSnapshot `json:"endpoints"`
	// TopQueries lists the executed query shapes with the highest p99
	// latency, worst first (Config.TopQueries entries at most).
	TopQueries []QueryShapeStats `json:"top_queries"`
	// QueryShapesDropped counts observations discarded because more than
	// Config.MaxQueryShapes distinct query texts were seen.
	QueryShapesDropped int64 `json:"query_shapes_dropped,omitempty"`
}

// AdmissionStats mirrors the admission-control configuration and its
// counters since startup.
type AdmissionStats struct {
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueued     int `json:"max_queued"`
	// QueryWorkers is the per-query morsel worker cap; together with
	// MaxConcurrent it bounds the server's total traversal goroutines.
	QueryWorkers int   `json:"query_workers"`
	Inflight     int64 `json:"inflight"`
	Queued       int64 `json:"queued"`
	Accepted     int64 `json:"accepted"`
	Shed         int64 `json:"shed"`
	Drained      int64 `json:"drained"`
	Timeouts     int64 `json:"timeouts"`
	Canceled     int64 `json:"canceled"`
	Failed       int64 `json:"failed"`
}

// PlanCacheStats is query.CacheStats in the /stats JSON shape.
type PlanCacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Shared   int64 `json:"shared"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

// PagerStats is storage.Stats in the /stats JSON shape.
type PagerStats struct {
	PageHits   int64 `json:"page_hits"`
	PageMisses int64 `json:"page_misses"`
	PageReads  int64 `json:"page_reads"`
	PageWrites int64 `json:"page_writes"`
}

// StorageStats is storage.LiveStats in the /stats JSON shape.
type StorageStats struct {
	Live          bool  `json:"live"`
	Segmented     bool  `json:"segmented"`
	DeltaVertices int64 `json:"delta_vertices"`
	DeltaEdges    int64 `json:"delta_edges"`
	WALAppends    int64 `json:"wal_appends"`
	WALSyncs      int64 `json:"wal_syncs"`
	WALBytes      int64 `json:"wal_bytes"`
	// WALSyncMeanUS is the mean fsync latency in microseconds — the
	// floor under every acknowledged mutation's latency.
	WALSyncMeanUS int64 `json:"wal_sync_mean_us"`
	// Generation numbers the base file set serving reads; each committed
	// background compaction bumps it.
	Generation int64 `json:"generation"`
	// FoldRunning / FoldProgressPermille report a background compaction
	// in flight and its rough progress (0-1000).
	FoldRunning          bool  `json:"fold_running"`
	FoldProgressPermille int64 `json:"fold_progress_permille"`
	// PinnedSnapshots counts acquired-but-unreleased store snapshots
	// (each pins the base generation it was taken against).
	PinnedSnapshots int64 `json:"pinned_snapshots"`
	// Compactions counts folds committed since the store opened.
	Compactions int64 `json:"compactions"`
	// LastCompactError is the most recent background fold failure, empty
	// while folds succeed.
	LastCompactError string `json:"last_compact_error,omitempty"`
	// Compressed reports the delta-varint adjacency layout (format v5);
	// EdgeBytes is its logical size, BytesPerEdge that size per edge, and
	// CompressionRatio the saving against the 64-byte v4 edge records.
	Compressed       bool    `json:"compressed"`
	EdgeBytes        int64   `json:"edge_bytes,omitempty"`
	BytesPerEdge     float64 `json:"bytes_per_edge,omitempty"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

// GraphStats is the persisted-statistics view of the served graph.
type GraphStats struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// LabelCounts and EdgeTypeCounts come from storage.Statistics;
	// EdgeTypeCounts is absent when the store predates the v5 statistics
	// block.
	LabelCounts    map[string]int `json:"label_counts,omitempty"`
	EdgeTypeCounts map[string]int `json:"edge_type_counts,omitempty"`
}

// BloomStats mirrors the query package's statistics-guard counters.
type BloomStats struct {
	Skips int64 `json:"skips"`
	FP    int64 `json:"fp"`
}

// Stats assembles the current StatsResponse; the /stats handler and the
// bench harness share it.
func (s *Server) Stats() StatsResponse {
	cs := s.cache.Stats()
	resp := StatsResponse{
		UptimeS: int64(time.Since(s.started).Seconds()),
		Admission: AdmissionStats{
			MaxConcurrent: s.cfg.MaxConcurrent,
			MaxQueued:     s.cfg.MaxQueued,
			QueryWorkers:  s.cfg.QueryWorkers,
			Inflight:      s.m.inflight.Load(),
			Queued:        s.m.queued.Load(),
			Accepted:      s.m.accepted.Load(),
			Shed:          s.m.shed.Load(),
			Drained:       s.m.drained.Load(),
			Timeouts:      s.m.timeouts.Load(),
			Canceled:      s.m.canceled.Load(),
			Failed:        s.m.failed.Load(),
		},
		PlanCache: PlanCacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Shared: cs.Shared,
			Size: cs.Size, Capacity: cs.Capacity,
		},
		Endpoints: map[string]HistogramSnapshot{
			"/query":         s.m.query.Snapshot(),
			"/mutate":        s.m.mutate.Snapshot(),
			"/admin/compact": s.m.compact.Snapshot(),
			"/healthz":       s.m.healthz.Snapshot(),
			"/stats":         s.m.stats.Snapshot(),
		},
		TopQueries:         s.shapes.top(s.cfg.TopQueries),
		QueryShapesDropped: s.shapes.dropped.Load(),
	}
	g := s.data.Load().graph
	if sr, ok := g.(storage.StatsReporter); ok {
		ps := sr.Stats()
		resp.Pager = &PagerStats{
			PageHits: ps.PageHits, PageMisses: ps.PageMisses,
			PageReads: ps.PageReads, PageWrites: ps.PageWrites,
		}
	}
	if lr, ok := g.(storage.LiveStatsReporter); ok {
		ls := lr.LiveStats()
		ss := &StorageStats{
			Live: ls.Live, Segmented: ls.Segmented,
			DeltaVertices: ls.DeltaVertices, DeltaEdges: ls.DeltaEdges,
			WALAppends: ls.WALAppends, WALSyncs: ls.WALSyncs, WALBytes: ls.WALBytes,
			Generation:  ls.Generation,
			FoldRunning: ls.FoldRunning, FoldProgressPermille: ls.FoldProgress,
			PinnedSnapshots:  ls.PinnedSnapshots,
			Compactions:      ls.Compactions,
			LastCompactError: s.lastCompactError(),
		}
		if ls.WALSyncs > 0 {
			ss.WALSyncMeanUS = ls.WALSyncNanos / ls.WALSyncs / 1000
		}
		if ls.Compressed {
			ss.Compressed = true
			ss.EdgeBytes = ls.EdgeBytes
			if nE := g.NumEdges(); nE > 0 && ls.EdgeBytes > 0 {
				ss.BytesPerEdge = float64(ls.EdgeBytes) / float64(nE)
				// Against the 64-byte fixed records every pre-v5 layout
				// stores per edge.
				ss.CompressionRatio = 64 / ss.BytesPerEdge
			}
		}
		resp.Storage = ss
	}
	if st, ok := g.(storage.Statistics); ok {
		resp.Graph = &GraphStats{
			Vertices:       g.NumVertices(),
			Edges:          g.NumEdges(),
			LabelCounts:    st.LabelCounts(),
			EdgeTypeCounts: st.EdgeTypeCounts(),
		}
	}
	resp.Bloom = BloomStats{Skips: query.BloomSkips(), FP: query.BloomFP()}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.m.stats.Observe(time.Since(start)) }()
	beginRequest(w, r)
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the metric registry in Prometheus text exposition
// format 0.0.4. The same numbers back the JSON /stats view.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	beginRequest(w, r)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.reg.WritePrometheus(w)
}

// ---- response helpers ----

// writeJSON marshals v on the cold paths (stats, health, errors); the hot
// /query path uses the pooled encoder instead.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// writeError renders one error body; every error response carries the
// request ID so a client can quote it back when reporting a failure.
func writeError(w http.ResponseWriter, status int, rid, msg string) {
	writeJSON(w, status, map[string]string{"error": msg, "request_id": rid})
}
