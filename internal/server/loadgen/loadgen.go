// Package loadgen is the traffic half of the serving benchmark: it drives
// N concurrent HTTP clients against a running query server and reports
// throughput and latency percentiles. The bench harness (`pgsbench -exp
// serve`, BenchmarkServeThroughput) uses it for the repository's
// end-to-end traffic numbers; it works against any base URL speaking the
// server package's POST /query protocol. With MutateFrac set, a fraction
// of requests become POST /mutate writes, and the read percentiles then
// measure query latency under concurrent durable ingest.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Query is the Cypher text POSTed to /query on every request.
	Query string
	// Clients is the number of concurrent client connections (default 8).
	Clients int
	// Requests is the total request count, split across clients (default
	// 50 per client).
	Requests int
	// Timeout bounds one request on the client side (default 30s).
	Timeout time.Duration

	// MutateFrac turns the run into a mixed read/write workload: each
	// request is a POST /mutate with probability MutateFrac (0 disables;
	// must be < 1 so read latency remains measurable). The mix is drawn
	// per request from a deterministic per-worker sequence, so a rerun
	// issues the same interleaving. Read and write latencies are reported
	// separately — the read percentiles answer "what does ingest do to
	// query p99", the point of the mode.
	MutateFrac float64
	// MutateBody is the JSON document POSTed to /mutate (required when
	// MutateFrac > 0). The same body is sent every time; bodies with
	// batch-relative references stay valid as the graph grows.
	MutateBody string
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 50 * o.Clients
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

func (o Options) validate() error {
	if o.BaseURL == "" || o.Query == "" {
		return errors.New("loadgen: BaseURL and Query are required")
	}
	if o.MutateFrac < 0 || o.MutateFrac >= 1 {
		return errors.New("loadgen: MutateFrac must be in [0, 1)")
	}
	if o.MutateFrac > 0 && o.MutateBody == "" {
		return errors.New("loadgen: MutateBody is required when MutateFrac > 0")
	}
	return nil
}

// Report summarizes one load run. Latency percentiles are computed over
// successful (2xx) requests only; shed requests are counted separately so
// a saturated server shows up as Shed > 0, not as fake latency.
type Report struct {
	Clients  int
	Requests int

	OK     int // 2xx responses to reads
	Shed   int // 429s: the server's admission control pushed back
	Errors int // transport errors and any other status

	// RowsPerOK is the row count of the first verified response body; the
	// harness uses it to reject runs that "succeed" with empty results.
	RowsPerOK int

	Elapsed   time.Duration
	ReqPerSec float64 // successful read requests per wall-clock second
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
	Max       time.Duration

	// Write-side counters of a mixed run (MutateFrac > 0). Mutate
	// latencies are tracked apart from reads, so the read percentiles
	// above measure query latency *under* ingest rather than averaging
	// the two populations together.
	Mutates      int // mutate requests issued
	MutateOK     int // 2xx responses to mutates
	MutateShed   int // 429s on mutates
	MutateErrors int
	MutateP50    time.Duration
	MutateP99    time.Duration

	// FirstError carries one representative failure for diagnostics.
	FirstError string
}

// Run executes the load: opts.Clients goroutines, each with its own
// keep-alive connection, issue opts.Requests requests in total and every
// latency is recorded. The first response per run is fully decoded to
// verify it carries rows; the rest are drained without parsing so the
// measurement stays client-cheap.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	transport := &http.Transport{
		MaxIdleConns:        opts.Clients,
		MaxIdleConnsPerHost: opts.Clients,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: opts.Timeout}
	base := strings.TrimRight(opts.BaseURL, "/")
	queryURL, mutateURL := base+"/query", base+"/mutate"

	type workerResult struct {
		latencies    []time.Duration
		mutLatencies []time.Duration
		ok           int
		shed         int
		errs         int
		mutates      int
		mutOK        int
		mutShed      int
		mutErrs      int
		firstErr     string
		rows         int
	}
	results := make([]workerResult, opts.Clients)

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Clients; w++ {
		share := opts.Requests / opts.Clients
		if w < opts.Requests%opts.Clients {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			res := &results[w]
			res.latencies = make([]time.Duration, 0, share)
			res.rows = -1
			// Deterministic per-worker mix: reruns hit the server with the
			// same read/write interleaving.
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for i := 0; i < share; i++ {
				mutate := opts.MutateFrac > 0 && rng.Float64() < opts.MutateFrac
				url, contentType, body := queryURL, "text/plain", opts.Query
				if mutate {
					url, contentType, body = mutateURL, "application/json", opts.MutateBody
					res.mutates++
				}
				reqStart := time.Now()
				resp, err := client.Post(url, contentType, strings.NewReader(body))
				if err != nil {
					if mutate {
						res.mutErrs++
					} else {
						res.errs++
					}
					if res.firstErr == "" {
						res.firstErr = err.Error()
					}
					continue
				}
				if !mutate && res.rows < 0 && resp.StatusCode == http.StatusOK {
					// Verify the first success per worker actually carries
					// rows; later responses are drained unparsed.
					var body struct {
						Rows []json.RawMessage `json:"rows"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
						res.rows = len(body.Rows)
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(reqStart)
				switch {
				case resp.StatusCode == http.StatusOK:
					if mutate {
						res.mutOK++
						res.mutLatencies = append(res.mutLatencies, lat)
					} else {
						res.ok++
						res.latencies = append(res.latencies, lat)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					if mutate {
						res.mutShed++
					} else {
						res.shed++
					}
				default:
					if mutate {
						res.mutErrs++
					} else {
						res.errs++
					}
					if res.firstErr == "" {
						res.firstErr = fmt.Sprintf("status %d on %s", resp.StatusCode, url[len(base):])
					}
				}
			}
		}(w, share)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Clients: opts.Clients, Requests: opts.Requests, Elapsed: elapsed, RowsPerOK: -1}
	var all, allMut []time.Duration
	for i := range results {
		r := &results[i]
		rep.OK += r.ok
		rep.Shed += r.shed
		rep.Errors += r.errs
		rep.Mutates += r.mutates
		rep.MutateOK += r.mutOK
		rep.MutateShed += r.mutShed
		rep.MutateErrors += r.mutErrs
		if rep.FirstError == "" {
			rep.FirstError = r.firstErr
		}
		if rep.RowsPerOK < 0 && r.rows >= 0 {
			rep.RowsPerOK = r.rows
		}
		all = append(all, r.latencies...)
		allMut = append(allMut, r.mutLatencies...)
	}
	if elapsed > 0 {
		rep.ReqPerSec = float64(rep.OK) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		rep.P50 = percentile(all, 0.50)
		rep.P90 = percentile(all, 0.90)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	if len(allMut) > 0 {
		sort.Slice(allMut, func(i, j int) bool { return allMut[i] < allMut[j] })
		rep.MutateP50 = percentile(allMut, 0.50)
		rep.MutateP99 = percentile(allMut, 0.99)
	}
	return rep, nil
}

// percentile indexes a sorted latency slice at quantile q (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
