package server

// Request-ID tracing. Every HTTP request gets an ID: a sane client-sent
// X-Request-Id is honored so callers can stitch our records into their
// own traces; otherwise one is generated from a per-boot random prefix
// and an atomic sequence. The ID is echoed in the X-Request-Id response
// header on every endpoint (success and error alike), embedded in every
// error body, and stamped on slow-query log entries.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// maxRequestIDLen bounds honored client-sent IDs so a hostile header
// cannot balloon logs or responses.
const maxRequestIDLen = 128

var (
	reqSeq     atomic.Int64
	bootPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degraded but unique-per-process: fall back to a fixed prefix;
			// the sequence still disambiguates within the process.
			return "pgs"
		}
		return hex.EncodeToString(b[:])
	}()
)

// requestID returns the request's trace ID: the client's X-Request-Id if
// it is well-formed, else a generated "<bootprefix>-<seq>".
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%d", bootPrefix, reqSeq.Add(1))
}

// validRequestID accepts IDs up to maxRequestIDLen of unambiguous
// characters — letters, digits, '.', '_', '-' — rejecting anything that
// could smuggle header or log-format metacharacters.
func validRequestID(s string) bool {
	if s == "" || len(s) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// beginRequest resolves the request's ID and echoes it in the response
// header before any body is written. Every handler calls it first.
func beginRequest(w http.ResponseWriter, r *http.Request) string {
	rid := requestID(r)
	w.Header().Set("X-Request-Id", rid)
	return rid
}
