// Package datagen synthesizes the paper's two evaluation datasets: the
// medical (MED) and financial (FIN) domain ontologies with the §5.1
// statistics, and deterministic instance data conforming to them.
//
// The real datasets are proprietary (MED) or require bulk regulatory
// filings (FIN/SEC+FDIC), so the generators reproduce their *shape*: the
// published concept/property/relationship counts and type mix, plus the
// specific concept motifs the paper's microbenchmark queries traverse
// (Figure 2 and the Q1-Q12 listings).
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/ontology"
)

func s(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
func i(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TInt} }

// MED builds the medical ontology: 43 concepts, 78 properties, and the
// paper's relationship mix (11 inheritance, 5 one-to-one, 30 one-to-many,
// 12 many-to-many), plus the Figure 2 union motif (Risk with two member
// concepts). The paper's §5.1 summary lists no union relationships for
// MED, yet its MED query Q1 traverses one — we follow the queries (see
// DESIGN.md).
func MED() *ontology.Ontology {
	o := ontology.New()

	// --- Figure 2 motif -------------------------------------------------
	o.AddConcept("Drug", s("name"), s("brand"))
	o.AddConcept("Indication", s("desc"))
	o.AddConcept("Condition", s("condName"), s("note"))
	o.AddConcept("Risk")
	o.AddConcept("ContraIndication", s("ciDesc"))
	o.AddConcept("BlackBoxWarning", s("warnNote"), s("route"))
	o.AddConcept("DrugInteraction", s("summary"))
	o.AddConcept("DrugFoodInteraction", s("riskLevel"))
	o.AddConcept("DrugLabInteraction", s("mechanism"))
	o.AddConcept("DrugRoute", s("drugRouteId"))

	o.AddRelationship("treat", "Drug", "Indication", ontology.OneToMany)
	o.AddRelationship("is", "Indication", "Condition", ontology.OneToOne)
	o.AddRelationship("cause", "Drug", "Risk", ontology.OneToMany)
	o.AddRelationship("unionOf", "Risk", "ContraIndication", ontology.Union)
	o.AddRelationship("unionOf", "Risk", "BlackBoxWarning", ontology.Union)
	o.AddRelationship("has", "Drug", "DrugInteraction", ontology.OneToMany)
	o.AddRelationship("isA", "DrugInteraction", "DrugFoodInteraction", ontology.Inheritance)
	o.AddRelationship("isA", "DrugInteraction", "DrugLabInteraction", ontology.Inheritance)
	o.AddRelationship("hasDrugRoute", "Drug", "DrugRoute", ontology.ManyToMany)

	// --- remaining medical concepts -------------------------------------
	names := []string{
		"Patient", "Disease", "Symptom", "Treatment", "Procedure",
		"LabTest", "Allergy", "SideEffect", "Dosage", "Manufacturer",
		"Ingredient", "ActiveIngredient", "InactiveIngredient",
		"ClinicalTrial", "Guideline", "Evidence", "Publication",
		"Monograph", "PatientEducation", "DoseForm", "Strength",
		"CareProvider", "Physician", "Pharmacist", "Encounter",
		"Prescription", "Immunization", "AdverseEvent", "MedicalDevice",
		"Observation", "VitalSign", "BodySite", "Pathogen",
	}
	for _, n := range names {
		o.AddConcept(n)
	}
	// 43 concepts total: 10 motif + 33 filler.

	// Inheritance (11 total; 2 already in the motif).
	inh := [][2]string{
		{"Ingredient", "ActiveIngredient"},
		{"Ingredient", "InactiveIngredient"},
		{"CareProvider", "Physician"},
		{"CareProvider", "Pharmacist"},
		{"Observation", "VitalSign"},
		{"Treatment", "Procedure"},
		{"Treatment", "Prescription"},
		{"Treatment", "Immunization"},
		{"SideEffect", "AdverseEvent"},
	}
	for _, e := range inh {
		o.AddRelationship("isA", e[0], e[1], ontology.Inheritance)
	}

	// One-to-one (5 total; 1 in the motif).
	for _, e := range [][2]string{
		{"Drug", "Monograph"},
		{"Monograph", "PatientEducation"},
		{"Prescription", "Dosage"},
		{"Disease", "Pathogen"},
	} {
		o.AddRelationship("paired", e[0], e[1], ontology.OneToOne)
	}

	// One-to-many (30 total; 3 in the motif).
	o2m := [][2]string{
		{"Patient", "Encounter"}, {"Patient", "Allergy"},
		{"Patient", "Observation"}, {"Patient", "Prescription"},
		{"Patient", "Immunization"}, {"Disease", "Symptom"},
		{"Disease", "Treatment"}, {"Drug", "SideEffect"},
		{"Drug", "Strength"}, {"Manufacturer", "Drug"},
		{"Drug", "DoseForm"}, {"Encounter", "LabTest"},
		{"Encounter", "VitalSign"}, {"ClinicalTrial", "Evidence"},
		{"Guideline", "Evidence"}, {"Publication", "Evidence"},
		{"Physician", "Encounter"}, {"Physician", "Prescription"},
		{"CareProvider", "Procedure"}, {"Condition", "Observation"},
		{"Disease", "ClinicalTrial"}, {"MedicalDevice", "AdverseEvent"},
		{"Pharmacist", "Immunization"}, {"BodySite", "Procedure"},
		{"Pathogen", "LabTest"}, {"Monograph", "Publication"},
		{"Guideline", "Treatment"},
	}
	for _, e := range o2m {
		o.AddRelationship("has"+e[1], e[0], e[1], ontology.OneToMany)
	}

	// Many-to-many (12 total; 1 in the motif).
	m2n := [][2]string{
		{"Drug", "Ingredient"}, {"Drug", "Disease"},
		{"Drug", "ClinicalTrial"}, {"Symptom", "Condition"},
		{"Treatment", "Guideline"}, {"Allergy", "Ingredient"},
		{"Patient", "Disease"}, {"Procedure", "MedicalDevice"},
		{"LabTest", "Observation"}, {"Publication", "Physician"},
		{"AdverseEvent", "Drug"},
	}
	for _, e := range m2n {
		o.AddRelationship("rel"+e[0]+e[1], e[0], e[1], ontology.ManyToMany)
	}

	// The Figure 2 / Figure 5 motif relies on the interaction hierarchy
	// having disjoint properties (JS = 0, the push-down band).
	fillProps(o, 78, 202, map[string]bool{
		"DrugFoodInteraction": true, "DrugLabInteraction": true,
	})
	if err := o.Validate(); err != nil {
		panic("datagen: MED invalid: " + err.Error())
	}
	return o
}

// FIN builds the financial ontology: 28 concepts, 96 properties, 138
// relationships (4 union, 69 inheritance, 30 one-to-many per §5.1; the
// unlisted remainder is allocated as 15 one-to-one and 20 many-to-many).
// It contains the concept motifs of queries Q3, Q7, and Q11
// (AutonomousAgent/Person/ContractParty isA chain, Corporation with
// hasLegalName, Contract managed by Corporation).
func FIN() *ontology.Ontology {
	o := ontology.New()
	names := []string{
		"AutonomousAgent", "Person", "ContractParty", "LegalEntity",
		"FormalOrganization", "Organization", "Corporation", "Bank",
		"Lender", "Borrower", "Officer", "Shareholder", "Contract",
		"Loan", "Mortgage", "Security", "Stock", "Bond",
		"FinancialInstrument", "Account", "Deposit", "Transaction",
		"Payment", "FinancialReport", "FinancialMetric", "Currency",
		"Exchange", "RegulatoryAgency",
	}
	for _, n := range names {
		o.AddConcept(n)
	}
	o.Concept("Corporation").Props = append(o.Concept("Corporation").Props, s("hasLegalName"))
	o.Concept("Contract").Props = append(o.Concept("Contract").Props, s("hasEffectiveDate"))
	o.Concept("Person").Props = append(o.Concept("Person").Props, s("personName"))
	o.Concept("AutonomousAgent").Props = append(o.Concept("AutonomousAgent").Props, s("agentId"))
	o.Concept("Account").Props = append(o.Concept("Account").Props, s("accountId"))

	// Inheritance: the Q3 chain plus a FIBO-like dense hierarchy (69
	// total). Parents always precede children in the name list above, so
	// the hierarchy is acyclic by construction.
	inh := [][2]string{
		{"AutonomousAgent", "Person"},
		{"Person", "ContractParty"},
		{"AutonomousAgent", "LegalEntity"},
		{"LegalEntity", "FormalOrganization"},
		{"FormalOrganization", "Organization"},
		{"Organization", "Corporation"},
		{"Corporation", "Bank"},
		{"ContractParty", "Lender"},
		{"ContractParty", "Borrower"},
		{"Person", "Officer"},
		{"Person", "Shareholder"},
		{"Contract", "Loan"},
		{"Loan", "Mortgage"},
		{"FinancialInstrument", "Security"},
		{"Security", "Stock"},
		{"Security", "Bond"},
	}
	seen := map[string]bool{}
	for _, e := range inh {
		o.AddRelationship("isA", e[0], e[1], ontology.Inheritance)
		seen[e[0]+">"+e[1]] = true
	}
	// Top up to 69 inheritance relationships with deterministic extra
	// parent links (multiple inheritance, always earlier -> later name).
	rng := rand.New(rand.NewSource(1077))
	for count := len(inh); count < 69; {
		a, b := rng.Intn(len(names)), rng.Intn(len(names))
		if a >= b {
			continue
		}
		key := names[a] + ">" + names[b]
		if seen[key] {
			continue
		}
		seen[key] = true
		o.AddRelationship("isA", names[a], names[b], ontology.Inheritance)
		count++
	}

	// Unions (4): two union concepts with two members each.
	o.AddConcept("PartyInRole")
	o.AddConcept("DebtInstrument")
	o.AddRelationship("unionOf", "PartyInRole", "Lender", ontology.Union)
	o.AddRelationship("unionOf", "PartyInRole", "Borrower", ontology.Union)
	o.AddRelationship("unionOf", "DebtInstrument", "Bond", ontology.Union)
	o.AddRelationship("unionOf", "DebtInstrument", "Mortgage", ontology.Union)
	// 28 + 2 = 30 concepts; see DESIGN.md: the union concepts are the
	// only deviation from the published concept count, required so the 4
	// published union relationships have sources.

	// One-to-many (30). Q11's isManagedBy is modeled from the "one" side
	// (Corporation manages many Contracts).
	o2m := [][3]string{
		{"manages", "Corporation", "Contract"},
		{"issues", "Corporation", "Stock"},
		{"issues2", "Corporation", "Bond"},
		{"holds", "Person", "Account"},
		{"makes", "Account", "Transaction"},
		{"receives", "Account", "Deposit"},
		{"schedules", "Loan", "Payment"},
		{"files", "Corporation", "FinancialReport"},
		{"reports", "FinancialReport", "FinancialMetric"},
		{"employs", "Corporation", "Officer"},
		{"lists", "Exchange", "Stock"},
		{"funds", "Bank", "Loan"},
		{"audits", "RegulatoryAgency", "FinancialReport"},
		{"oversees", "RegulatoryAgency", "Bank"},
		{"originates", "Lender", "Mortgage"},
		{"owespayment", "Borrower", "Payment"},
		{"settles", "Exchange", "Transaction"},
		{"priced", "Currency", "Security"},
		{"denominates", "Currency", "Account"},
		{"collects", "Bank", "Deposit"},
		{"sponsors", "Corporation", "FinancialInstrument"},
		{"tracks", "FinancialMetric", "Transaction"},
		{"mandates", "Contract", "Payment"},
		{"registers", "Exchange", "Corporation"},
		{"advises", "Officer", "Contract"},
		{"guarantees", "Bank", "Mortgage"},
		{"maintains", "Bank", "Account"},
		{"publishes", "RegulatoryAgency", "FinancialMetric"},
		{"splits", "Stock", "Transaction"},
		{"remits", "Payment", "Deposit"},
	}
	for _, e := range o2m {
		o.AddRelationship(e[0], e[1], e[2], ontology.OneToMany)
	}

	// One-to-one (15).
	o2o := [][2]string{
		{"Corporation", "FinancialReport"}, {"Currency", "RegulatoryAgency"},
		{"Stock", "Currency"}, {"Account", "Person"},
		{"Mortgage", "Payment"}, {"Bank", "RegulatoryAgency"},
		{"Officer", "Shareholder"}, {"Deposit", "Transaction"},
		{"Bond", "Currency"}, {"Exchange", "Currency"},
		{"FinancialMetric", "Security"}, {"Lender", "Bank"},
		{"Borrower", "Account"}, {"FinancialInstrument", "Contract"},
		{"Shareholder", "Stock"},
	}
	for k, e := range o2o {
		o.AddRelationship(fmt.Sprintf("sameAs%d", k), e[0], e[1], ontology.OneToOne)
	}

	// Many-to-many (20).
	m2n := [][2]string{
		{"Person", "Corporation"}, {"Shareholder", "Corporation"},
		{"Lender", "Borrower"}, {"Corporation", "Security"},
		{"Bank", "Currency"}, {"Contract", "ContractParty"},
		{"Officer", "FinancialReport"}, {"Exchange", "Bank"},
		{"Transaction", "Currency"}, {"Loan", "Security"},
		{"Account", "FinancialInstrument"}, {"Person", "Contract"},
		{"RegulatoryAgency", "Exchange"}, {"FinancialReport", "Security"},
		{"Payment", "Currency"}, {"Deposit", "Currency"},
		{"Corporation", "RegulatoryAgency"}, {"Stock", "Shareholder"},
		{"Bond", "Exchange"}, {"Mortgage", "Account"},
	}
	for _, e := range m2n {
		o.AddRelationship("rel"+e[0]+e[1], e[0], e[1], ontology.ManyToMany)
	}

	// Q3's isA chain must stay in the push-down band (JS < θ2) so the
	// paper's microbenchmark rewrites collapse it.
	fillProps(o, 96, 404, map[string]bool{
		"Person": true, "ContractParty": true,
	})
	if err := o.Validate(); err != nil {
		panic("datagen: FIN invalid: " + err.Error())
	}
	return o
}

// fillProps tops up concepts with deterministic filler properties until
// the ontology has exactly total properties. Where a concept has an
// inheritance parent, half of its fillers reuse a parent property name —
// real ontologies (SNOMED, FIBO) flatten shared attributes down their
// hierarchies, which is what gives the inheritance rule's Jaccard
// similarity (Equation 1) a non-trivial spectrum across relationships.
func fillProps(o *ontology.Ontology, total int, seed int64, noShare map[string]bool) {
	rng := rand.New(rand.NewSource(seed))
	current := o.NumProps()
	if current > total {
		panic(fmt.Sprintf("datagen: base ontology already has %d > %d properties", current, total))
	}
	parents := map[string][]string{}
	for _, r := range o.Relationships {
		if r.Type == ontology.Inheritance {
			parents[r.Dst] = append(parents[r.Dst], r.Src)
		}
	}
	n := 0
	for current < total {
		c := o.Concepts[rng.Intn(len(o.Concepts))]
		// Try to share a parent property name.
		if ps := parents[c.Name]; len(ps) > 0 && !noShare[c.Name] && rng.Intn(4) < 3 {
			parent := o.Concept(ps[rng.Intn(len(ps))])
			if len(parent.Props) > 0 {
				p := parent.Props[rng.Intn(len(parent.Props))]
				if !c.HasProp(p.Name) {
					c.Props = append(c.Props, p)
					current++
					continue
				}
			}
		}
		var p ontology.Property
		if rng.Intn(3) == 0 {
			p = i(fmt.Sprintf("attr%d", n))
		} else {
			p = s(fmt.Sprintf("attr%d", n))
		}
		n++
		c.Props = append(c.Props, p)
		current++
	}
}
