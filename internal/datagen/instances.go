package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/ontology"
)

// Instance is one entity occurrence of a concept.
type Instance struct {
	Concept string
	Ordinal int
	Props   map[string]graph.Value
	// OriginConcept/OriginOrdinal identify the entity this instance
	// represents: facet instances (the parent/union-concept side of
	// inheritance and union links) keep the identity of the leaf
	// instance they were created for, so an entity reachable through
	// several relationships (diamond inheritance, union + isA between
	// the same pair) gets exactly one facet per ancestor concept.
	OriginConcept string
	OriginOrdinal int
}

// Link is one relationship occurrence between two instances, identified by
// their ordinals within the source and destination extents.
type Link struct {
	Src int
	Dst int
}

// Dataset is generated instance data conforming to an ontology. For
// inheritance and union relationships, each destination (child/member)
// instance has a dedicated source (parent facet/union facet) instance
// linked to it; parents may additionally have own instances that belong
// to no child.
type Dataset struct {
	Ontology *ontology.Ontology
	// Extents maps concept name to its instances (facets included).
	Extents map[string][]*Instance
	// Links maps Relationship.Key() to its instance links.
	Links map[string][]Link
	// Stats holds the actual cardinalities, usable as optimizer input.
	Stats *ontology.Stats
}

// Options configures data generation.
type Options struct {
	Seed int64
	// BaseCard is the number of own instances per ordinary concept
	// (default 200).
	BaseCard int
	// Fanout is the average destination count per source of a 1:M
	// relationship (default 4).
	Fanout int
	// Degree is the neighbor count per destination instance of an M:N
	// relationship (default 3).
	Degree int
	// ParentOnlyFrac is the fraction of BaseCard kept as parent-only
	// instances for inheritance parents (default 0.25).
	ParentOnlyFrac float64
	// DistinctValues bounds the distinct values per property (default
	// 32); smaller values make joins and aggregations denser.
	DistinctValues int
}

func (o Options) withDefaults() Options {
	if o.BaseCard == 0 {
		o.BaseCard = 200
	}
	if o.Fanout == 0 {
		o.Fanout = 4
	}
	if o.Degree == 0 {
		o.Degree = 3
	}
	if o.ParentOnlyFrac == 0 {
		o.ParentOnlyFrac = 0.25
	}
	if o.DistinctValues == 0 {
		o.DistinctValues = 32
	}
	return o
}

// Generate produces a deterministic dataset for the ontology.
func Generate(o *ontology.Ontology, opts Options) (*Dataset, error) {
	opts = opts.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	ds := &Dataset{
		Ontology: o,
		Extents:  map[string][]*Instance{},
		Links:    map[string][]Link{},
		Stats:    ontology.NewStats(24),
	}

	// Union concepts have no own instances — their extent is exactly the
	// facets of their members. Inheritance parents keep a parent-only
	// share.
	isUnion := map[string]bool{}
	isParent := map[string]bool{}
	for _, r := range o.Relationships {
		switch r.Type {
		case ontology.Union:
			isUnion[r.Src] = true
		case ontology.Inheritance:
			isParent[r.Src] = true
		}
	}
	for _, c := range o.Concepts {
		var own int
		switch {
		case isUnion[c.Name]:
			own = 0
		case isParent[c.Name]:
			own = int(float64(opts.BaseCard) * opts.ParentOnlyFrac)
		default:
			own = opts.BaseCard
		}
		for k := 0; k < own; k++ {
			ds.addInstance(o, c.Name, opts, rng)
		}
	}

	// Facet-creating relationships must run destination-first: a parent
	// facet is created for every destination instance, including facets
	// added by deeper relationships. Facets are deduplicated by origin
	// entity, so an entity reachable over several paths (diamond
	// inheritance, union and isA between the same pair) appears exactly
	// once per ancestor concept.
	facetRels := make([]*ontology.Relationship, 0)
	for _, r := range o.Relationships {
		if r.Type == ontology.Inheritance || r.Type == ontology.Union {
			facetRels = append(facetRels, r)
		}
	}
	ordered, err := orderFacetRels(facetRels)
	if err != nil {
		return nil, err
	}
	type originKey struct {
		concept, originConcept string
		originOrdinal          int
	}
	facetOf := map[originKey]int{}
	for _, r := range ordered {
		for dstIdx, dst := range ds.Extents[r.Dst] {
			key := originKey{r.Src, dst.OriginConcept, dst.OriginOrdinal}
			facet, ok := facetOf[key]
			if !ok {
				facet = ds.addInstance(o, r.Src, opts, rng)
				f := ds.Extents[r.Src][facet]
				f.OriginConcept, f.OriginOrdinal = dst.OriginConcept, dst.OriginOrdinal
				facetOf[key] = facet
			}
			ds.Links[r.Key()] = append(ds.Links[r.Key()], Link{Src: facet, Dst: dstIdx})
		}
	}

	// Plain relationships.
	for _, r := range o.Relationships {
		srcN, dstN := len(ds.Extents[r.Src]), len(ds.Extents[r.Dst])
		if srcN == 0 || dstN == 0 {
			continue
		}
		switch r.Type {
		case ontology.OneToOne:
			n := srcN
			if dstN < n {
				n = dstN
			}
			for k := 0; k < n; k++ {
				ds.Links[r.Key()] = append(ds.Links[r.Key()], Link{Src: k, Dst: k})
			}
		case ontology.OneToMany:
			// Every destination has exactly one source; expected fanout
			// is dstN/srcN (the generator's dimensioning knob, not a hard
			// guarantee per source).
			for d := 0; d < dstN; d++ {
				ds.Links[r.Key()] = append(ds.Links[r.Key()], Link{Src: rng.Intn(srcN), Dst: d})
			}
		case ontology.ManyToMany:
			for d := 0; d < dstN; d++ {
				seen := map[int]bool{}
				for k := 0; k < opts.Degree; k++ {
					s := rng.Intn(srcN)
					if seen[s] {
						continue
					}
					seen[s] = true
					ds.Links[r.Key()] = append(ds.Links[r.Key()], Link{Src: s, Dst: d})
				}
			}
		}
	}

	for c, ext := range ds.Extents {
		ds.Stats.ConceptCard[c] = len(ext)
	}
	for _, r := range o.Relationships {
		ds.Stats.RelCard[r.Key()] = len(ds.Links[r.Key()])
	}
	return ds, nil
}

// addInstance appends a new instance with deterministic property values
// and returns its ordinal.
func (ds *Dataset) addInstance(o *ontology.Ontology, concept string, opts Options, rng *rand.Rand) int {
	c := o.Concept(concept)
	ord := len(ds.Extents[concept])
	inst := &Instance{
		Concept: concept, Ordinal: ord, Props: map[string]graph.Value{},
		OriginConcept: concept, OriginOrdinal: ord,
	}
	for _, p := range c.Props {
		v := rng.Intn(opts.DistinctValues)
		switch p.Type {
		case ontology.TInt:
			inst.Props[p.Name] = graph.I(int64(v))
		case ontology.TFloat:
			inst.Props[p.Name] = graph.F(float64(v) / 2)
		case ontology.TBool:
			inst.Props[p.Name] = graph.B(v%2 == 0)
		default:
			inst.Props[p.Name] = graph.S(fmt.Sprintf("%s_%s_%d", concept, p.Name, v))
		}
	}
	ds.Extents[concept] = append(ds.Extents[concept], inst)
	return ord
}

// orderFacetRels sorts inheritance/union relationships so that any
// relationship producing instances of concept X runs before relationships
// that consume X's extent (i.e. whose destination is X). Fails on cycles
// through the combined inheritance+union graph.
func orderFacetRels(rels []*ontology.Relationship) ([]*ontology.Relationship, error) {
	// Dependency: rel (x, y) must run after every rel (y, z).
	bySrc := map[string][]*ontology.Relationship{}
	for _, r := range rels {
		bySrc[r.Src] = append(bySrc[r.Src], r)
	}
	for _, rs := range bySrc {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Key() < rs[j].Key() })
	}
	var order []*ontology.Relationship
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(concept string) error
	visit = func(concept string) error {
		switch state[concept] {
		case 1:
			return fmt.Errorf("datagen: inheritance/union cycle through %s", concept)
		case 2:
			return nil
		}
		state[concept] = 1
		for _, r := range bySrc[concept] {
			if err := visit(r.Dst); err != nil {
				return err
			}
			order = append(order, r)
		}
		state[concept] = 2
		return nil
	}
	var srcs []string
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		if err := visit(s); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// NumInstances returns the total instance count across extents.
func (ds *Dataset) NumInstances() int {
	n := 0
	for _, ext := range ds.Extents {
		n += len(ext)
	}
	return n
}

// NumLinks returns the total link count.
func (ds *Dataset) NumLinks() int {
	n := 0
	for _, ls := range ds.Links {
		n += len(ls)
	}
	return n
}
