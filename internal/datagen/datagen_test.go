package datagen

import (
	"testing"

	"repro/internal/ontology"
)

// TestMEDMatchesPaperStatistics checks §5.1: 43 concepts, 78 properties,
// 58 relationships (11 inheritance, 5 1:1, 30 1:M, 12 M:N) plus the two
// union relationships of the Figure 2 motif (see DESIGN.md).
func TestMEDMatchesPaperStatistics(t *testing.T) {
	o := MED()
	if got := len(o.Concepts); got != 43 {
		t.Errorf("MED concepts = %d, want 43", got)
	}
	if got := o.NumProps(); got != 78 {
		t.Errorf("MED properties = %d, want 78", got)
	}
	counts := o.CountByType()
	want := map[ontology.RelType]int{
		ontology.Inheritance: 11,
		ontology.OneToOne:    5,
		ontology.OneToMany:   30,
		ontology.ManyToMany:  12,
		ontology.Union:       2,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("MED %s relationships = %d, want %d", k, counts[k], v)
		}
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("MED invalid: %v", err)
	}
}

// TestFINMatchesPaperStatistics checks §5.1: 96 properties and 138
// relationships (4 union, 69 inheritance, 30 1:M; remainder 15 1:1 and 20
// M:N). Concepts are 28 + the 2 union concepts the published unions need.
func TestFINMatchesPaperStatistics(t *testing.T) {
	o := FIN()
	if got := len(o.Concepts); got != 30 {
		t.Errorf("FIN concepts = %d, want 30 (28 + 2 union concepts)", got)
	}
	if got := o.NumProps(); got != 96 {
		t.Errorf("FIN properties = %d, want 96", got)
	}
	if got := len(o.Relationships); got != 138 {
		t.Errorf("FIN relationships = %d, want 138", got)
	}
	counts := o.CountByType()
	want := map[ontology.RelType]int{
		ontology.Union:       4,
		ontology.Inheritance: 69,
		ontology.OneToMany:   30,
		ontology.OneToOne:    15,
		ontology.ManyToMany:  20,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("FIN %s relationships = %d, want %d", k, counts[k], v)
		}
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("FIN invalid: %v", err)
	}
}

// TestQueryMotifsPresent: the microbenchmark queries need these concepts
// and relationships to exist.
func TestQueryMotifsPresent(t *testing.T) {
	med := MED()
	for _, c := range []string{"Drug", "Risk", "ContraIndication", "DrugInteraction", "DrugLabInteraction", "DrugRoute", "Indication"} {
		if med.Concept(c) == nil {
			t.Errorf("MED missing %s", c)
		}
	}
	fin := FIN()
	for _, c := range []string{"AutonomousAgent", "Person", "ContractParty", "Corporation", "Contract"} {
		if fin.Concept(c) == nil {
			t.Errorf("FIN missing %s", c)
		}
	}
	if !fin.Concept("Corporation").HasProp("hasLegalName") {
		t.Error("Corporation.hasLegalName missing (Q7)")
	}
	if !fin.Concept("Contract").HasProp("hasEffectiveDate") {
		t.Error("Contract.hasEffectiveDate missing (Q11)")
	}
}

func TestOntologiesDeterministic(t *testing.T) {
	if MED().String() != MED().String() {
		t.Error("MED not deterministic")
	}
	if FIN().String() != FIN().String() {
		t.Error("FIN not deterministic")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	o := MED()
	a, err := Generate(o, Options{Seed: 5, BaseCard: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(o, Options{Seed: 5, BaseCard: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumInstances() != b.NumInstances() || a.NumLinks() != b.NumLinks() {
		t.Error("generation not deterministic in counts")
	}
	for c, ext := range a.Extents {
		for i, inst := range ext {
			for k, v := range inst.Props {
				if !b.Extents[c][i].Props[k].Equal(v) {
					t.Fatalf("prop mismatch at %s[%d].%s", c, i, k)
				}
			}
		}
	}
}

func TestGenerateCardinalities(t *testing.T) {
	o := MED()
	ds, err := Generate(o, Options{Seed: 1, BaseCard: 40, ParentOnlyFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Union concept Risk: extent = facets of its two members only.
	wantRisk := len(ds.Extents["ContraIndication"]) + len(ds.Extents["BlackBoxWarning"])
	if got := len(ds.Extents["Risk"]); got != wantRisk {
		t.Errorf("Risk extent = %d, want %d", got, wantRisk)
	}
	// Parent concept: own (25%) + one facet per child instance.
	wantDI := 10 + len(ds.Extents["DrugFoodInteraction"]) + len(ds.Extents["DrugLabInteraction"])
	if got := len(ds.Extents["DrugInteraction"]); got != wantDI {
		t.Errorf("DrugInteraction extent = %d, want %d", got, wantDI)
	}
	// Ordinary concept.
	if got := len(ds.Extents["Patient"]); got != 40 {
		t.Errorf("Patient extent = %d, want 40", got)
	}
	// Stats reflect the actual data.
	if err := ds.Stats.Validate(o); err != nil {
		t.Errorf("stats incomplete: %v", err)
	}
	if ds.Stats.Card("Risk") != wantRisk {
		t.Errorf("stats Risk card = %d, want %d", ds.Stats.Card("Risk"), wantRisk)
	}
}

func TestGenerateLinkShapes(t *testing.T) {
	o := MED()
	ds, err := Generate(o, Options{Seed: 2, BaseCard: 30, Fanout: 4, Degree: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 1:M: every destination instance has exactly one source link.
	treat := ds.Links["Drug-[treat]->Indication"]
	if len(treat) != len(ds.Extents["Indication"]) {
		t.Errorf("treat links = %d, want %d", len(treat), len(ds.Extents["Indication"]))
	}
	seenDst := map[int]int{}
	for _, l := range treat {
		seenDst[l.Dst]++
		if l.Src < 0 || l.Src >= len(ds.Extents["Drug"]) {
			t.Fatalf("treat src out of range: %d", l.Src)
		}
	}
	for d, n := range seenDst {
		if n != 1 {
			t.Errorf("indication %d has %d sources, want 1", d, n)
		}
	}
	// Inheritance: one dedicated parent facet per child instance.
	isa := ds.Links["DrugInteraction-[isA]->DrugFoodInteraction"]
	if len(isa) != len(ds.Extents["DrugFoodInteraction"]) {
		t.Errorf("isA links = %d, want %d", len(isa), len(ds.Extents["DrugFoodInteraction"]))
	}
	seenSrc := map[int]bool{}
	for _, l := range isa {
		if seenSrc[l.Src] {
			t.Error("parent facet shared between children")
		}
		seenSrc[l.Src] = true
	}
	// 1:1: index pairing.
	for _, l := range ds.Links["Indication-[is]->Condition"] {
		if l.Src != l.Dst {
			t.Errorf("1:1 link not index-paired: %+v", l)
		}
	}
}

func TestGenerateRejectsInvalidOntology(t *testing.T) {
	o := ontology.New()
	o.AddConcept("A")
	o.AddRelationship("r", "A", "Missing", ontology.OneToMany)
	if _, err := Generate(o, Options{Seed: 1}); err == nil {
		t.Error("invalid ontology accepted")
	}
}

func TestFacetChainDepth(t *testing.T) {
	// Grandchild instances must have facets at both ancestor levels.
	o := ontology.New()
	o.AddConcept("GP")
	o.AddConcept("P")
	o.AddConcept("C")
	o.AddRelationship("isA", "GP", "P", ontology.Inheritance)
	o.AddRelationship("isA", "P", "C", ontology.Inheritance)
	ds, err := Generate(o, Options{Seed: 3, BaseCard: 8, ParentOnlyFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// C: 8 own. P: 2 own + 8 facets = 10. GP: 2 own + 10 facets = 12.
	if got := len(ds.Extents["C"]); got != 8 {
		t.Errorf("C = %d, want 8", got)
	}
	if got := len(ds.Extents["P"]); got != 10 {
		t.Errorf("P = %d, want 10", got)
	}
	if got := len(ds.Extents["GP"]); got != 12 {
		t.Errorf("GP = %d, want 12", got)
	}
}
