package loader

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
)

func medOntology() *ontology.Ontology { return datagen.MED() }

func genData(t *testing.T, o *ontology.Ontology, card int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(o, datagen.Options{Seed: 7, BaseCard: card})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDirectLoadCounts(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 20)
	mem := memstore.New()
	v, e, err := Load(mem, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != ds.NumInstances() {
		t.Errorf("DIR vertices = %d, want %d (one per instance)", v, ds.NumInstances())
	}
	if e != ds.NumLinks() {
		t.Errorf("DIR edges = %d, want %d (one per link)", e, ds.NumLinks())
	}
	if mem.NumVertices() != v || mem.NumEdges() != e {
		t.Error("store counts disagree with loader counts")
	}
	// DIR keeps isA/unionOf instance edges.
	found := false
	mem.ForEachVertex("DrugFoodInteraction", func(id storage.VID) bool {
		mem.ForEachOut(id, "isA", func(_ storage.EID, dst storage.VID) bool {
			if mem.HasLabel(dst, "DrugInteraction") {
				found = true
			}
			return false
		})
		return !found
	})
	if !found {
		t.Error("DIR graph has no child-[isA]->parent edge")
	}
}

func nscMapping(t *testing.T, o *ontology.Ontology) *core.Mapping {
	t.Helper()
	res, err := core.NSC(o, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.Mapping
}

func TestOptimizedLoadMergesFacets(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 20)
	m := nscMapping(t, o)
	mem := memstore.New()
	v, _, err := Load(mem, ds, m)
	if err != nil {
		t.Fatal(err)
	}
	if v >= ds.NumInstances() {
		t.Errorf("OPT vertices = %d, expected fewer than %d instances", v, ds.NumInstances())
	}
	// Union facets merged: every ContraIndication vertex also carries the
	// Risk label, and no unionOf edges remain.
	mem.ForEachVertex("ContraIndication", func(id storage.VID) bool {
		if !mem.HasLabel(id, "Risk") {
			t.Errorf("vertex %d: ContraIndication without Risk label", id)
			return false
		}
		return true
	})
	count := 0
	mem.ForEachVertex("", func(id storage.VID) bool {
		count += mem.Degree(id, "unionOf", true)
		return true
	})
	if count != 0 {
		t.Errorf("OPT graph kept %d unionOf edges", count)
	}
	// Parent pushed into children: DrugFoodInteraction vertices carry the
	// parent label and the parent's property.
	checked := false
	mem.ForEachVertex("DrugFoodInteraction", func(id storage.VID) bool {
		checked = true
		if !mem.HasLabel(id, "DrugInteraction") {
			t.Errorf("vertex %d missing merged parent label", id)
		}
		if _, ok := mem.Prop(id, "summary"); !ok {
			t.Errorf("vertex %d missing parent property summary", id)
		}
		return false
	})
	if !checked {
		t.Fatal("no DrugFoodInteraction vertices")
	}
}

func TestResidualParentOnlyVertices(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 20)
	m := nscMapping(t, o)
	mem := memstore.New()
	if _, _, err := Load(mem, ds, m); err != nil {
		t.Fatal(err)
	}
	// Parent-only DrugInteraction instances stay as residual vertices
	// labeled only with the parent concept.
	residuals := 0
	mem.ForEachVertex("DrugInteraction", func(id storage.VID) bool {
		if !mem.HasLabel(id, "DrugFoodInteraction") && !mem.HasLabel(id, "DrugLabInteraction") {
			residuals++
		}
		return true
	})
	want := 0
	for _, inst := range ds.Extents["DrugInteraction"] {
		_ = inst
		want++
	}
	want -= len(ds.Extents["DrugFoodInteraction"]) + len(ds.Extents["DrugLabInteraction"])
	if residuals != want {
		t.Errorf("residual parent vertices = %d, want %d", residuals, want)
	}
}

func TestListPropReplication(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 20)
	m := nscMapping(t, o)
	mem := memstore.New()
	if _, _, err := Load(mem, ds, m); err != nil {
		t.Fatal(err)
	}
	// Figure 7: Drug carries Indication.desc as a LIST, consistent with
	// its treat links.
	treat := ds.Links["Drug-[treat]->Indication"]
	perDrug := map[int]int{}
	for _, l := range treat {
		perDrug[l.Src]++
	}
	idx := 0
	mem.ForEachVertex("Drug", func(id storage.VID) bool {
		val, ok := mem.Prop(id, "Indication.desc")
		if !ok {
			t.Errorf("drug vertex %d missing Indication.desc", id)
			return false
		}
		if val.Kind() != graph.KindList {
			t.Errorf("Indication.desc kind = %v", val.Kind())
			return false
		}
		idx++
		return true
	})
	if idx == 0 {
		t.Fatal("no Drug vertices")
	}
	// Aggregate totals agree with link count (values are all non-null
	// strings in the generator).
	res, err := query.Run(mem, cypher.MustParse("MATCH (d:Drug) RETURN SUM(size(d.`Indication.desc`))"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != int64(len(treat)) {
		t.Errorf("total replicated values = %d, want %d", got, len(treat))
	}
}

// TestEdgeConservation: non-collapsed edges appear exactly once in both
// DIR and OPT graphs.
func TestEdgeConservation(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 15)
	m := nscMapping(t, o)
	dir, opt := memstore.New(), memstore.New()
	if _, _, err := Load(dir, ds, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(opt, ds, m); err != nil {
		t.Fatal(err)
	}
	collapsed := map[string]bool{}
	for _, mg := range m.Merges {
		collapsed[mg.RelKey] = true
	}
	wantOpt := 0
	for _, r := range o.Relationships {
		if !collapsed[r.Key()] {
			wantOpt += len(ds.Links[r.Key()])
		}
	}
	if opt.NumEdges() != wantOpt {
		t.Errorf("OPT edges = %d, want %d", opt.NumEdges(), wantOpt)
	}
	if dir.NumEdges() != ds.NumLinks() {
		t.Errorf("DIR edges = %d, want %d", dir.NumEdges(), ds.NumLinks())
	}
}

// TestQ1StyleEquivalence: the union-collapse preserves the answer of the
// paper's Q1 pattern.
func TestQ1StyleEquivalence(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 25)
	m := nscMapping(t, o)
	dir, opt := memstore.New(), memstore.New()
	if _, _, err := Load(dir, ds, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(opt, ds, m); err != nil {
		t.Fatal(err)
	}
	qDir := cypher.MustParse(
		`MATCH (d:Drug)-[:cause]->(r:Risk)<-[:unionOf]-(ci:ContraIndication) RETURN d.name, ci.ciDesc`)
	qOpt := cypher.MustParse(
		`MATCH (d:Drug)-[:cause]->(ci:ContraIndication:Risk) RETURN d.name, ci.ciDesc`)
	rd, err := query.Run(dir, qDir)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := query.Run(opt, qOpt)
	if err != nil {
		t.Fatal(err)
	}
	query.SortRowsForComparison(rd.Rows)
	query.SortRowsForComparison(ro.Rows)
	if len(rd.Rows) == 0 {
		t.Fatal("Q1 DIR returned nothing; fixture broken")
	}
	if len(rd.Rows) != len(ro.Rows) {
		t.Fatalf("row counts differ: DIR %d vs OPT %d", len(rd.Rows), len(ro.Rows))
	}
	for i := range rd.Rows {
		for j := range rd.Rows[i] {
			if !rd.Rows[i][j].Equal(ro.Rows[i][j]) {
				t.Fatalf("row %d differs: %v vs %v", i, rd.Rows[i], ro.Rows[i])
			}
		}
	}
}

func TestLoadWithBadMapping(t *testing.T) {
	o := medOntology()
	ds := genData(t, o, 5)
	m := &core.Mapping{Merges: []core.Merge{{Kind: core.MergeUnion, RelKey: "nope", EdgeName: "x", From: "A", To: "B"}}}
	if _, _, err := Load(memstore.New(), ds, m); err == nil {
		t.Error("bad mapping accepted")
	}
}
