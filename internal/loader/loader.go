// Package loader instantiates property graphs from generated instance
// data according to a schema mapping: with the empty mapping it produces
// the paper's direct-mapped graph (DIR — one vertex per instance, isA and
// unionOf edges materialized), and with an optimizer-produced mapping it
// produces the optimized graph (OPT — facet vertices merged into
// multi-label vertices, collapsed relationships dropped, selected
// properties replicated as lists).
package loader

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/ontology"
	"repro/internal/storage"
)

// instRef identifies an instance inside a dataset.
type instRef struct {
	concept string
	ordinal int
}

// Load populates the builder with the dataset under the mapping and
// returns the number of vertices and edges created.
//
// Vertices and edges stream through a storage.BulkLoader in batches: on
// stores with a native batched write path (diskstore) this defers all
// adjacency, degree, and index construction to one finalize pass — which
// also leaves diskstore adjacency type-segmented — instead of paying a
// read-modify-write per AddEdge; on other stores it degrades to the
// per-item calls transparently. Properties are written before the single
// finalize at the end of the load, scalars last so they sit at the head
// of record-store property chains (see step 5).
func Load(b storage.Builder, ds *datagen.Dataset, m *core.Mapping) (vertices, edges int, err error) {
	if m == nil {
		m = &core.Mapping{}
	}
	o := ds.Ontology
	bl := storage.NewBulkLoader(b, 0)

	// 1. Union-find over instances, seeded by the mapping's merges.
	uf := newInstanceUF()
	mergedRels := map[string]bool{}
	for _, mg := range m.Merges {
		mergedRels[mg.RelKey] = true
		r := relByKey(o, mg.RelKey)
		if r == nil {
			return 0, 0, fmt.Errorf("loader: mapping references unknown relationship %s", mg.RelKey)
		}
		for _, l := range ds.Links[mg.RelKey] {
			uf.union(instRef{r.Src, l.Src}, instRef{r.Dst, l.Dst})
		}
	}

	// 2. One vertex per merge group, in deterministic order.
	vertexOf := map[instRef]storage.VID{}
	conceptNames := make([]string, 0, len(o.Concepts))
	for _, c := range o.Concepts {
		conceptNames = append(conceptNames, c.Name)
	}
	groups := map[instRef][]instRef{}
	for _, cn := range conceptNames {
		for ord := range ds.Extents[cn] {
			ref := instRef{cn, ord}
			root := uf.find(ref)
			groups[root] = append(groups[root], ref)
		}
	}
	var roots []instRef
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].concept != roots[j].concept {
			return roots[i].concept < roots[j].concept
		}
		return roots[i].ordinal < roots[j].ordinal
	})
	for _, root := range roots {
		members := groups[root]
		sort.Slice(members, func(i, j int) bool {
			if members[i].concept != members[j].concept {
				return members[i].concept < members[j].concept
			}
			return members[i].ordinal < members[j].ordinal
		})
		labels := make([]string, 0, len(members))
		seen := map[string]bool{}
		for _, ref := range members {
			if !seen[ref.concept] {
				seen[ref.concept] = true
				labels = append(labels, ref.concept)
			}
		}
		v, err := bl.AddVertex(labels...)
		if err != nil {
			return 0, 0, err
		}
		vertices++
		for _, ref := range members {
			vertexOf[ref] = v
		}
	}

	// 3. Edges for every non-collapsed relationship. Inheritance and
	// union links materialize child→parent / member→union facet edges
	// (the paper's Figure 1(b) DIR layout).
	for _, r := range o.Relationships {
		if mergedRels[r.Key()] {
			continue
		}
		src, dst := r.Src, r.Dst
		reversed := r.Type == ontology.Inheritance || r.Type == ontology.Union
		for _, l := range ds.Links[r.Key()] {
			sv := vertexOf[instRef{src, l.Src}]
			dv := vertexOf[instRef{dst, l.Dst}]
			if reversed {
				sv, dv = dv, sv
			}
			if err := bl.AddEdge(sv, dv, r.Name); err != nil {
				return 0, 0, err
			}
			edges++
		}
	}
	// All structural data is in. Flush the buffered batches so the
	// property phases below can address every vertex, but defer the
	// finalize itself to the end of the load: the property phases only
	// need label iteration (safe on an unfinalized store), and finalizing
	// first would flip a live-capable store into durable-write mode —
	// WAL-logging and fsyncing every one of the bulk SetProp calls below.
	if err := bl.Flush(); err != nil {
		return 0, 0, err
	}

	// 4. Replicated list properties. Values are collected directly from
	// the dataset links so they are exact regardless of merges.
	for _, lp := range m.ListProps {
		r := relByKey(o, lp.RelKey)
		if r == nil {
			return 0, 0, fmt.Errorf("loader: mapping references unknown relationship %s", lp.RelKey)
		}
		values := map[storage.VID][]graph.Value{}
		for _, l := range ds.Links[lp.RelKey] {
			carrierRef := instRef{r.Src, l.Src}
			neighborRef := instRef{r.Dst, l.Dst}
			if lp.Reverse {
				carrierRef, neighborRef = neighborRef, carrierRef
			}
			cv := vertexOf[carrierRef]
			nInst := ds.Extents[neighborRef.concept][neighborRef.ordinal]
			if val, ok := nInst.Props[lp.Prop]; ok && !val.IsNull() {
				values[cv] = append(values[cv], val)
			}
		}
		// Every carrier vertex gets the property, empty list included,
		// so size() is 0 rather than NULL on childless vertices.
		b.ForEachVertex(lp.Carrier, func(v storage.VID) bool {
			if err = b.SetProp(v, lp.Key, graph.L(values[v]...)); err != nil {
				return false
			}
			return true
		})
		if err != nil {
			return 0, 0, err
		}
	}

	// 5. Scalar instance properties go in last: record-store backends
	// prepend property records, so writing scalars after the (larger)
	// replicated lists keeps them at the head of each vertex's property
	// chain where point lookups find them first.
	for _, root := range roots {
		for _, ref := range groups[root] {
			v := vertexOf[ref]
			inst := ds.Extents[ref.concept][ref.ordinal]
			keys := make([]string, 0, len(inst.Props))
			for k := range inst.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := b.SetProp(v, k, inst.Props[k]); err != nil {
					return 0, 0, err
				}
			}
		}
	}

	// One finalize builds the deferred adjacency/degree/index structures
	// (and, on diskstore, leaves the finished store accepting durable
	// live mutations).
	if err := bl.Finalize(); err != nil {
		return 0, 0, err
	}
	return vertices, edges, nil
}

func relByKey(o *ontology.Ontology, key string) *ontology.Relationship {
	for _, r := range o.Relationships {
		if r.Key() == key {
			return r
		}
	}
	return nil
}

// instanceUF is a union-find over instance references.
type instanceUF struct {
	parent map[instRef]instRef
}

func newInstanceUF() *instanceUF {
	return &instanceUF{parent: map[instRef]instRef{}}
}

func (u *instanceUF) find(r instRef) instRef {
	p, ok := u.parent[r]
	if !ok {
		return r
	}
	root := u.find(p)
	u.parent[r] = root
	return root
}

func less(a, b instRef) bool {
	if a.concept != b.concept {
		return a.concept < b.concept
	}
	return a.ordinal < b.ordinal
}

func (u *instanceUF) union(a, b instRef) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if less(rb, ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
