// Command pgsserve is the network-facing query service: it generates a
// dataset (MED or FIN), loads it into a backend under the direct or the
// optimized schema, and serves it over HTTP with admission control, a
// shared plan cache, per-request timeouts, and graceful shutdown.
//
// Usage:
//
//	pgsserve -dataset MED -addr 127.0.0.1:8080
//	pgsserve -dataset FIN -backend diskstore -cache-pages 64 -optimize
//	curl -s localhost:8080/query -d 'MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, COUNT(i.desc)'
//	curl -s localhost:8080/mutate -H 'Content-Type: application/json' \
//	     -d '{"vertices":[{"labels":["Drug"],"props":{"name":"Naproxen"}}],"edges":[{"src":-1,"dst":2,"type":"treat"}]}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//
// POST /query accepts raw Cypher (or {"query": "..."} with a JSON
// content type) and answers with rows, work counters, and the executed —
// possibly rewritten — query text. With -optimize the schema is chosen by
// the paper's PGSG algorithm for the dataset's microbenchmark workload,
// and every incoming query is rewritten through the mapping exactly like
// pgsquery's OPT side.
//
// POST /mutate accepts one durable mutation batch on a diskstore backend
// in live-write mode: the batch is WAL-logged and fsynced before the 200,
// so acknowledged writes survive a crash (see the server package for the
// request shape). /stats reports the live-write gauges — delta segment
// sizes, WAL fsync counts and mean latency — next to the pager and
// admission numbers.
//
// Observability: GET /metrics serves the same registry as /stats in
// Prometheus text exposition format; every response carries an
// X-Request-Id (honored from the client or generated); a query prefixed
// with PROFILE (or sent to /query?profile=1) returns a per-phase,
// per-operator trace. -slow-query-log streams JSON lines for requests at
// or above -slow-query-threshold, and -pprof-addr serves
// net/http/pprof on a separate listener.
//
// When -data-dir points at an already-populated diskstore (e.g. written
// by `pgsgen -store` or a previous pgsserve run), the store is served
// as-is: no dataset load runs, and a format-v4 store restores its label
// index from index.db instead of scanning every vertex — the fast-restart
// path. The operator must pass the same -optimize/-localize flags the
// store was built with; pgsserve cannot verify the schema a store on disk
// was loaded under.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr registers /debug/pprof on DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/optimizer"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsserve: ")
	// All the work happens in run so deferred cleanups (closing the
	// diskstore, removing a temp data dir) execute on error paths too.
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dataset := flag.String("dataset", "MED", "dataset: MED or FIN")
	card := flag.Int("card", 60, "base cardinality per concept")
	seed := flag.Int64("seed", 2021, "data generation seed")
	backend := flag.String("backend", "memstore", "storage backend: memstore or diskstore")
	dataDir := flag.String("data-dir", "", "diskstore directory (default: a temp dir, removed on exit)")
	cachePages := flag.Int("cache-pages", 64, "diskstore page cache size")
	mmap := flag.Bool("mmap", false, "serve diskstore vertex/edge reads from a read-only memory map instead of the page cache")
	optimize := flag.Bool("optimize", false, "serve the optimized schema (PGSG over the dataset's microbenchmark workload)")
	budgetPct := flag.Float64("budget-pct", 50, "space budget as % of Cost(NSC) when optimizing")
	localize := flag.Bool("localize", false, "also localize scalar neighbor lookups in rewrites")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", server.DefaultMaxConcurrent, "queries executing at once")
	maxQueued := flag.Int("max-queued", server.DefaultMaxQueued, "queries waiting for a slot before 429 shedding")
	queryWorkers := flag.Int("query-workers", server.DefaultQueryWorkers, "morsel workers per query (intra-query parallelism; total traversal goroutines <= max-concurrent * query-workers)")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request timeout")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body limit in bytes")
	maxQueryLen := flag.Int("max-query-len", server.DefaultMaxQueryLen, "query text limit in bytes")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity (0 = default)")
	autoCompact := flag.Int64("auto-compact", 0, "start a background compaction once the live delta holds this many vertices+edges (0 = manual via POST /admin/compact)")
	drainWait := flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it off public interfaces)")
	slowThreshold := flag.Duration("slow-query-threshold", 0, "log requests at or above this latency to the slow-query log (0 with -slow-query-log = log every request)")
	slowLog := flag.String("slow-query-log", "", "slow-query log destination: a file path (appended), or - for stderr")
	flag.Parse()

	// Slow-query log destination. The server serializes writes, so an
	// O_APPEND file or stderr both yield intact JSON lines.
	var slowSink io.Writer
	if *slowLog != "" {
		if *slowLog == "-" {
			slowSink = os.Stderr
		} else {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("open slow-query log: %w", err)
			}
			defer f.Close()
			slowSink = f
		}
	}

	// pprof gets its own listener so profiling endpoints never share the
	// query port: net/http/pprof registers on DefaultServeMux, which the
	// query server deliberately does not use.
	if *pprofAddr != "" {
		lis, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		log.Printf("pprof listening on %s (GET /debug/pprof/)", lis.Addr())
		go func() {
			if err := http.Serve(lis, http.DefaultServeMux); err != nil {
				log.Printf("pprof server stopped: %v", err)
			}
		}()
	}

	o := datagen.MED()
	switch *dataset {
	case "MED":
	case "FIN":
		o = datagen.FIN()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}

	var st storage.Builder
	var dsk *diskstore.Store
	var err error
	switch *backend {
	case "memstore":
		st = memstore.New()
	case "diskstore":
		dir := *dataDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "pgsserve-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		dsk, err = diskstore.Open(dir, diskstore.Options{CachePages: *cachePages, Mmap: *mmap})
		if err != nil {
			return err
		}
		defer dsk.Close()
		st = dsk
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}

	// Fast restart: a -data-dir that already holds a built store is served
	// as-is — no load, and no dataset generation either unless -optimize
	// needs the generated statistics for the rewrite mapping.
	reuse := dsk != nil && dsk.NumVertices() > 0
	var ds *datagen.Dataset
	if !reuse || *optimize {
		ds, err = datagen.Generate(o, datagen.Options{Seed: *seed, BaseCard: *card})
		if err != nil {
			return err
		}
	}

	// The optimized schema targets the dataset's own microbenchmark
	// workload, the paper's stand-in for "what this service is asked".
	var mapping *core.Mapping
	if *optimize {
		af, err := workload.AFFromQueries(o, workload.MicrobenchmarkFor(*dataset))
		if err != nil {
			return err
		}
		in, err := optimizer.NewInputs(o, ds.Stats, af, core.DefaultConfig())
		if err != nil {
			return err
		}
		total, err := in.NSCCost()
		if err != nil {
			return err
		}
		plan, err := optimizer.PGSG(in, total**budgetPct/100)
		if err != nil {
			return err
		}
		mapping = plan.Result.Mapping
	}

	schema := "direct"
	if mapping != nil {
		schema = fmt.Sprintf("optimized (PGSG, %.4g%% budget)", *budgetPct)
	}
	if reuse {
		// The schema flags must match how the store was built; pgsserve
		// cannot verify that from the files alone.
		log.Printf("reusing existing store in %s: %d vertices, %d edges, %s schema (assumed from flags)",
			*dataDir, dsk.NumVertices(), dsk.NumEdges(), schema)
	} else {
		vertices, edges, err := loader.Load(st, ds, mapping)
		if err != nil {
			return err
		}
		log.Printf("loaded %s on %s: %d vertices, %d edges, %s schema", *dataset, *backend, vertices, edges, schema)
	}
	if dsk != nil {
		f := dsk.Format()
		log.Printf("diskstore format v%d (segmented adjacency: %v, compressed adjacency: %v, opened via persisted index: %v, mmap: %v)",
			f.Version, f.Segmented, f.Compressed, f.IndexLoaded, *mmap)
		if ls := dsk.LiveStats(); ls.Live {
			log.Printf("live writes enabled (POST /mutate): delta carries %d vertices / %d edges from the WAL",
				ls.DeltaVertices, ls.DeltaEdges)
		}
	}

	srv, err := server.New(server.Config{
		Graph:          storage.Graph(st),
		Mapping:        mapping,
		RewriteOpts:    rewrite.Options{LocalizeScalarLookups: *localize},
		MaxConcurrent:  *maxConcurrent,
		MaxQueued:      *maxQueued,
		QueryWorkers:   *queryWorkers,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxQueryLen:    *maxQueryLen,
		PlanCacheSize:  *planCache,

		AutoCompactDeltaItems: *autoCompact,
		SlowQueryThreshold:    *slowThreshold,
		SlowQueryLog:          slowSink,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s (POST /query, POST /mutate, GET /healthz, GET /stats, GET /metrics)", bound)

	// Drain on SIGINT/SIGTERM: stop accepting, let in-flight requests
	// finish (each bounded by -timeout), then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down, draining in-flight requests (up to %v)", *drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Print("bye")
	return nil
}
