// Command pgsgen emits the evaluation ontologies (and optionally their
// synthetic data statistics) as JSON, for use with pgsopt or external
// tooling.
//
// Usage:
//
//	pgsgen -dataset MED            # ontology JSON to stdout
//	pgsgen -dataset FIN -o fin.json
//	pgsgen -dataset MED -stats -card 200
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/datagen"
	"repro/internal/ontology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsgen: ")
	dataset := flag.String("dataset", "MED", "ontology to emit: MED or FIN")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "emit generated data statistics instead of the ontology")
	card := flag.Int("card", 100, "base cardinality per concept for -stats")
	seed := flag.Int64("seed", 2021, "generation seed for -stats")
	flag.Parse()

	var o *ontology.Ontology
	switch *dataset {
	case "MED":
		o = datagen.MED()
	case "FIN":
		o = datagen.FIN()
	default:
		log.Fatalf("unknown dataset %q (want MED or FIN)", *dataset)
	}

	var data []byte
	var err error
	if *stats {
		ds, gerr := datagen.Generate(o, datagen.Options{Seed: *seed, BaseCard: *card})
		if gerr != nil {
			log.Fatal(gerr)
		}
		data, err = json.MarshalIndent(ds.Stats, "", "  ")
	} else {
		data, err = o.MarshalJSON()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
}
