// Command pgsgen emits the evaluation ontologies (and optionally their
// synthetic data statistics) as JSON, for use with pgsopt or external
// tooling — or, with -store, builds the generated dataset into a
// reusable on-disk diskstore.
//
// Usage:
//
//	pgsgen -dataset MED            # ontology JSON to stdout
//	pgsgen -dataset FIN -o fin.json
//	pgsgen -dataset MED -stats -card 200
//	pgsgen -dataset MED -card 200 -store /tmp/med-store
//
// -store loads the dataset (direct schema) through the bulk-build
// pipeline into a format-v4 diskstore at the given directory: adjacency
// comes out type-segmented and the label index is persisted, so a later
// `pgsserve -backend diskstore -data-dir DIR` serves it without
// regenerating or rescanning anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/ontology"
	"repro/internal/storage/diskstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsgen: ")
	dataset := flag.String("dataset", "MED", "ontology to emit: MED or FIN")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "emit generated data statistics instead of the ontology")
	card := flag.Int("card", 100, "base cardinality per concept for -stats/-store")
	seed := flag.Int64("seed", 2021, "generation seed for -stats/-store")
	storeDir := flag.String("store", "", "bulk-load the generated dataset into a diskstore at this directory")
	flag.Parse()

	var o *ontology.Ontology
	switch *dataset {
	case "MED":
		o = datagen.MED()
	case "FIN":
		o = datagen.FIN()
	default:
		log.Fatalf("unknown dataset %q (want MED or FIN)", *dataset)
	}

	if *storeDir != "" {
		buildStore(o, *storeDir, *seed, *card)
		return
	}

	var data []byte
	var err error
	if *stats {
		ds, gerr := datagen.Generate(o, datagen.Options{Seed: *seed, BaseCard: *card})
		if gerr != nil {
			log.Fatal(gerr)
		}
		data, err = json.MarshalIndent(ds.Stats, "", "  ")
	} else {
		data, err = o.MarshalJSON()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
}

// buildStore generates the dataset and bulk-loads it into a diskstore at
// dir, reporting what was built.
func buildStore(o *ontology.Ontology, dir string, seed int64, card int) {
	ds, err := datagen.Generate(o, datagen.Options{Seed: seed, BaseCard: card})
	if err != nil {
		log.Fatal(err)
	}
	st, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if st.NumVertices() > 0 {
		st.Close()
		log.Fatalf("%s already holds a store with %d vertices; loading again would duplicate the dataset — pick an empty directory or delete it first", dir, st.NumVertices())
	}
	start := time.Now()
	vertices, edges, err := loader.Load(st, ds, nil)
	if err != nil {
		st.Close()
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	f, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	info := f.Format()
	f.Close()
	fmt.Printf("built %s in %v: %d vertices, %d edges, format v%d (segmented=%v, persisted index=%v)\n",
		dir, time.Since(start).Round(time.Millisecond), vertices, edges,
		info.Version, info.Segmented, info.IndexLoaded)
}
