// Command pgsbench regenerates the paper's evaluation: every figure and
// table of §5 plus the §1 motivating examples, printed as text tables.
//
// Usage:
//
//	pgsbench -exp all
//	pgsbench -exp fig11 -med-card 200 -fin-card 60
//	pgsbench -exp table2
//	pgsbench -exp parallel
//	pgsbench -exp serve -serve-reqs 200
//	pgsbench -exp open,bulkload
//	pgsbench -exp compress -compress-verts 20000
//	pgsbench -exp fig11 -json results.json
//
// Experiments: fig8, fig9, fig10, fig11, fig12, table2, motivating,
// parallel, serve, open, bulkload, crash, compact, compress, all.
//
// -json writes every table's rows as one machine-readable document
// (invocation metadata plus a section per table) for CI trend tracking;
// the text tables still print.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/storage/diskstore/crashtest"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsbench: ")
	exp := flag.String("exp", "all", "experiment: fig8|fig9|fig10|fig11|fig12|table2|motivating|parallel|serve|open|bulkload|crash|compact|compress|all")
	medCard := flag.Int("med-card", 120, "MED base cardinality per concept")
	finCard := flag.Int("fin-card", 40, "FIN base cardinality per concept")
	seed := flag.Int64("seed", 2021, "generation seed")
	reps := flag.Int("reps", 3, "query repetitions per measurement")
	cache := flag.Int("cache-pages", 64, "diskstore page cache size")
	mmap := flag.Bool("mmap", false, "serve diskstore vertex/edge reads from a read-only memory map instead of the page cache")
	tight := flag.Int("tight-pages", 16, "page budget of the disk-bound parallel-scaling variant")
	queryWorkers := flag.String("query-workers", "1,2,4,8",
		"comma-separated morsel worker counts for the intra-query half of -exp parallel")
	serveReqs := flag.Int("serve-reqs", 100, "requests per client in the serve experiment")
	serveMutateFrac := flag.Float64("serve-mutate-frac", 0,
		"fraction of serve-experiment requests that are durable writes (diskstore variants only)")
	crashMuts := flag.Int("crash-muts", 60, "mutations per truncation sweep in the crash experiment")
	crashKills := flag.Int("crash-kills", 120, "minimum WAL kill points in the crash experiment")
	crashRounds := flag.Int("crash-rounds", 12, "SIGKILL rounds in the crash experiment")
	compactVerts := flag.Int("compact-verts", 20000, "base vertices in the compact experiment")
	compactReaders := flag.Int("compact-readers", 4, "concurrent readers in the compact experiment")
	compressVerts := flag.Int("compress-verts", 20000, "vertices in the compress experiment")
	compressEdges := flag.Int("compress-edges", 0, "edges in the compress experiment (0 = 3x vertices)")
	jsonOut := flag.String("json", "", "also write results as JSON to this file (- for stdout)")
	flag.Parse()

	if *exp == "crash-child" {
		// Hidden mode: the crash experiment re-invokes this binary as the
		// workload child it SIGKILLs. Never returns.
		crashtest.ChildMain()
	}

	opts := bench.Options{
		MedCard: *medCard, FinCard: *finCard, Seed: *seed,
		Reps: *reps, CachePages: *cache, Mmap: *mmap,
	}
	// -json collects every printed table's rows into one machine-readable
	// report; a nil *Report makes every Add a no-op.
	var report *bench.Report
	if *jsonOut != "" {
		report = &bench.Report{Meta: map[string]any{
			"exp": *exp, "med_card": *medCard, "fin_card": *finCard,
			"seed": *seed, "reps": *reps, "cache_pages": *cache, "mmap": *mmap,
		}}
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }

	var med, fin *bench.Env
	env := func(name string) *bench.Env {
		var e **bench.Env
		if name == "MED" {
			e = &med
		} else {
			e = &fin
		}
		if *e == nil {
			v, err := bench.NewEnv(name, opts)
			if err != nil {
				log.Fatal(err)
			}
			*e = v
			fmt.Printf("[%s] %d concepts, %d relationships; %d instances, %d links\n",
				name, len(v.Ontology.Concepts), len(v.Ontology.Relationships),
				v.Dataset.NumInstances(), v.Dataset.NumLinks())
		}
		return *e
	}
	backends := []bench.Backend{bench.Memstore, bench.Diskstore}

	ran := false
	if run("fig8") {
		ran = true
		for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
			pts, err := bench.VaryingSpace(env("MED"), dist, bench.DefaultSpacePcts)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Figure 8 — varying space constraints (MED, %s workload)", dist)
			fmt.Println(bench.FormatBRTable(title, pts))
			report.Add("fig8", title, pts)
		}
	}
	if run("fig9") {
		ran = true
		pcts := append([]float64{0.001}, bench.DefaultSpacePcts...)
		for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
			pts, err := bench.VaryingSpace(env("FIN"), dist, pcts)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Figure 9 — varying space constraints (FIN, %s workload)", dist)
			fmt.Println(bench.FormatBRTable(title, pts))
			report.Add("fig9", title, pts)
		}
	}
	if run("fig10") {
		ran = true
		for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
			pts, err := bench.VaryingThetas(env("FIN"), dist, bench.DefaultThetaPairs)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Figure 10 — varying Jaccard thresholds (FIN, %s workload)", dist)
			fmt.Println(bench.FormatThetaTable(title, pts))
			report.Add("fig10", title, pts)
		}
	}
	if run("fig11") {
		ran = true
		var rows []bench.MicroRow
		for _, name := range []string{"MED", "FIN"} {
			r, err := bench.Microbenchmark(env(name), backends)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, r...)
		}
		fmt.Println(bench.FormatMicroTable("Figure 11 — microbenchmark Q1-Q12 (DIR vs OPT)", rows))
		report.Add("fig11", "Figure 11 — microbenchmark Q1-Q12 (DIR vs OPT)", rows)
	}
	if run("fig12") {
		ran = true
		var rows []bench.WorkloadRow
		for _, name := range []string{"MED", "FIN"} {
			r, err := bench.WorkloadLatency(env(name), backends)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, r...)
		}
		fmt.Println(bench.FormatWorkloadTable("Figure 12 — total query latency, 15-query Zipf workload", rows))
		report.Add("fig12", "Figure 12 — total query latency, 15-query Zipf workload", rows)
	}
	if run("table2") {
		ran = true
		var rows []bench.EffRow
		for _, name := range []string{"MED", "FIN"} {
			r, err := bench.Efficiency(env(name), []int{25, 50, 75})
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, r...)
		}
		fmt.Println(bench.FormatEffTable("Table 2 — optimization time of RC and CC", rows))
		report.Add("table2", "Table 2 — optimization time of RC and CC", rows)
	}
	if run("motivating") {
		ran = true
		rows, err := bench.Motivating(env("MED"), bench.Diskstore)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatMotivating(rows))
		report.Add("motivating", "Motivating examples (§1)", rows)
	}
	if run("parallel") {
		ran = true
		for _, b := range backends {
			pts, err := bench.ParallelScaling(env("MED"), b, bench.DefaultParallelGoroutines, 200)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Parallel readers — one shared plan, %s (MED)", b)
			fmt.Println(bench.FormatParallelTable(title, pts))
			report.Add("parallel", title, pts)
		}
		// The disk-bound regime: a page budget far below the working set,
		// where the paper's schema optimizations (and the sharded pager)
		// matter most. Before the shard rewrite this curve was flat.
		tightPts, err := bench.ParallelScaling(env("MED").WithCachePages(*tight), bench.Diskstore, bench.DefaultParallelGoroutines, 200)
		if err != nil {
			log.Fatal(err)
		}
		tightTitle := fmt.Sprintf("Parallel readers — one shared plan, diskstore tight cache (%d pages, MED)", *tight)
		fmt.Println(bench.FormatParallelTable(tightTitle, tightPts))
		report.Add("parallel", tightTitle, tightPts)

		// The intra-query half: one client, morsel workers inside each
		// execution. Where the tables above add clients, these add workers
		// to a single client's query — the "one heavy traversal should
		// saturate the machine" number.
		workers, err := parseWorkerList(*queryWorkers)
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range backends {
			pts, err := bench.IntraQueryScaling(env("MED"), b, workers, 100)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Intra-query morsel workers — single client, %s (MED)", b)
			fmt.Println(bench.FormatIntraQueryTable(title, pts))
			report.Add("parallel", title, pts)
		}
		tightIntra, err := bench.IntraQueryScaling(env("MED").WithCachePages(*tight), bench.Diskstore, workers, 100)
		if err != nil {
			log.Fatal(err)
		}
		tightIntraTitle := fmt.Sprintf("Intra-query morsel workers — single client, diskstore tight cache (%d pages, MED)", *tight)
		fmt.Println(bench.FormatIntraQueryTable(tightIntraTitle, tightIntra))
		report.Add("parallel", tightIntraTitle, tightIntra)
	}
	if run("serve") {
		ran = true
		// The end-to-end traffic numbers: a live HTTP server on loopback,
		// driven by concurrent loadgen clients, on the in-memory backend
		// and on the deliberately disk-bound tight-cache diskstore.
		variants := []struct {
			title  string
			env    *bench.Env
			back   bench.Backend
			mutate float64
		}{
			// Only diskstore has the durable write path, so the mutate
			// fraction applies to the diskstore variants alone.
			{"memstore (MED)", env("MED"), bench.Memstore, 0},
			{"diskstore (MED)", env("MED"), bench.Diskstore, *serveMutateFrac},
			{fmt.Sprintf("diskstore tight cache (%d pages, MED)", *tight), env("MED").WithCachePages(*tight), bench.Diskstore, *serveMutateFrac},
		}
		for _, v := range variants {
			title := "HTTP serving throughput — " + v.title
			if v.mutate > 0 {
				title = fmt.Sprintf("HTTP serving under ingest (%.0f%% writes) — %s", v.mutate*100, v.title)
			}
			pts, err := bench.ServeThroughput(v.env, v.back,
				bench.ServeOptions{RequestsPerClient: *serveReqs, MutateFrac: v.mutate})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(bench.FormatServeTable(title, pts))
			report.Add("serve", title, pts)
		}
	}
	if run("crash") {
		ran = true
		// The crash-recovery audit: first the deterministic WAL truncation
		// sweep (every acknowledged prefix must reopen exactly), then the
		// SIGKILL loop against a real child process (this binary, re-run
		// in the hidden crash-child mode).
		scratch, err := os.MkdirTemp("", "pgs-crash-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(scratch)
		srep, err := crashtest.TruncationSweep(filepath.Join(scratch, "sweep"), *crashMuts, *crashKills)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Crash recovery — truncation sweep: %d mutations, %d WAL bytes, %d kill points, all recovered exactly\n",
			srep.Mutations, srep.WALBytes, srep.KillPoints)
		report.Add("crash", "Crash recovery — truncation sweep", srep)
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		krep, err := crashtest.KillLoop(crashtest.KillConfig{
			Scratch: filepath.Join(scratch, "kill"),
			Rounds:  *crashRounds,
			Child:   []string{exe, "-exp", "crash-child"},
			Seed:    time.Now().UnixNano(),
			Log:     func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Crash recovery — SIGKILL loop: %d rounds, %d killed, %d clean exits, %d mid-compact detections, %d mutations survive\n\n",
			krep.Rounds, krep.Kills, krep.CleanExits, krep.Detected, krep.FinalOps)
		report.Add("crash", "Crash recovery — SIGKILL loop", krep)
	}
	if run("compact") {
		ran = true
		// Background compaction under load: read latency while a fold
		// rewrites the base generation, versus the same store quiesced,
		// plus the audit that every mutation acknowledged mid-fold is
		// visible after the swap and after a cold reopen.
		scratch, err := os.MkdirTemp("", "pgs-compact-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(scratch)
		crep, err := bench.CompactLatency(scratch, *compactVerts, *compactVerts*3, *compactReaders, *seed)
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Background compaction — read latency during fold vs quiesced (diskstore, %d readers)", *compactReaders)
		fmt.Println(bench.FormatCompactReport(title, crep))
		report.Add("compact", title, crep)
	}
	if run("compress") {
		ran = true
		// The format-v5 story in one table: the same graph in the v4
		// record-array layout and the v5 delta-varint layout, traversed
		// under a tight page budget with the mmap read path off and on,
		// plus the bloom-guard skip rate only v5 statistics can deliver.
		rows, err := bench.Compress(bench.CompressOptions{
			Vertices: *compressVerts, Edges: *compressEdges,
			Seed: *seed, TightPages: *tight,
		})
		if err != nil {
			log.Fatal(err)
		}
		title := fmt.Sprintf("Adjacency compression — v4 vs v5, tight cache (%d pages), mmap off/on", *tight)
		fmt.Println(bench.FormatCompressTable(title, rows))
		report.Add("compress", title, rows)
	}
	if run("open") {
		ran = true
		// Cold restart cost: the same v4 diskstore reopened through its
		// persisted index versus with index.db removed (the pre-v4
		// full-vertex scan every open used to pay).
		rows, err := bench.ColdOpen(env("MED"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatColdOpenTable("Cold open — persisted index (v4) vs full-vertex scan (MED, diskstore)", rows))
		report.Add("open", "Cold open — persisted index (v4) vs full-vertex scan (MED, diskstore)", rows)
	}
	if run("bulkload") {
		ran = true
		for _, b := range backends {
			rows, err := bench.BulkLoad(env("MED"), b)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("Dataset load — bulk pipeline vs incremental writes (%s, MED)", b)
			fmt.Println(bench.FormatBulkLoadTable(title, rows))
			report.Add("bulkload", title, rows)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if report != nil {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "-" {
			log.Printf("wrote JSON results to %s", *jsonOut)
		}
	}
}

// parseWorkerList parses the -query-workers flag: a comma-separated list
// of positive worker counts.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -query-workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-query-workers lists no worker counts")
	}
	return out, nil
}
