// Command pgsquery runs ad-hoc Cypher queries against a generated dataset
// under both the direct and the optimized schema, showing the rewritten
// query, both result sets, and the work counters side by side — the
// fastest way to inspect what the optimizer does to a specific query.
//
// Usage:
//
//	pgsquery -dataset MED 'MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc))'
//	pgsquery -dataset FIN -budget-pct 25 -localize 'MATCH (s:Person)-[:holds]->(a:Account) RETURN a.accountId'
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsquery: ")
	dataset := flag.String("dataset", "MED", "dataset: MED or FIN")
	card := flag.Int("card", 60, "base cardinality per concept")
	seed := flag.Int64("seed", 2021, "data generation seed")
	budgetPct := flag.Float64("budget-pct", -1, "space budget as % of Cost(NSC); negative = unconstrained")
	localize := flag.Bool("localize", false, "also localize scalar neighbor lookups (paper's Q6 behaviour)")
	maxRows := flag.Int("rows", 10, "result rows to print per schema")
	repeat := flag.Int("repeat", 1, "execute each query this many times (compiled once) and report total latency")
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}

	if flag.NArg() != 1 {
		log.Fatal("usage: pgsquery [flags] 'MATCH ... RETURN ...'")
	}
	src := flag.Arg(0)
	parsed, err := cypher.Parse(src)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	var o = datagen.MED()
	if *dataset == "FIN" {
		o = datagen.FIN()
	} else if *dataset != "MED" {
		log.Fatalf("unknown dataset %q", *dataset)
	}
	ds, err := datagen.Generate(o, datagen.Options{Seed: *seed, BaseCard: *card})
	if err != nil {
		log.Fatal(err)
	}

	// Optimize for this query's own access pattern, like the paper's
	// workload summaries.
	af, err := workload.AFFromQueries(o, []workload.Query{{Name: "q", Text: src}})
	if err != nil {
		log.Fatal(err)
	}
	in, err := optimizer.NewInputs(o, ds.Stats, af, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var plan *optimizer.Plan
	if *budgetPct < 0 {
		plan, err = optimizer.NSC(in)
	} else {
		total, terr := in.NSCCost()
		if terr != nil {
			log.Fatal(terr)
		}
		plan, err = optimizer.PGSG(in, total**budgetPct/100)
	}
	if err != nil {
		log.Fatal(err)
	}

	rewritten, notes, err := rewrite.Rewrite(parsed, plan.Result.Mapping, rewrite.Options{LocalizeScalarLookups: *localize})
	if err != nil {
		log.Fatal(err)
	}

	dir, opt := memstore.New(), memstore.New()
	if _, _, err := loader.Load(dir, ds, nil); err != nil {
		log.Fatal(err)
	}
	if _, _, err := loader.Load(opt, ds, plan.Result.Mapping); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DIR query: %s\n", parsed)
	fmt.Printf("OPT query: %s\n", rewritten)
	for _, n := range notes {
		fmt.Printf("  rewrite: %s\n", n)
	}
	fmt.Println()
	show(dir, parsed, "DIR", *maxRows, *repeat)
	fmt.Println()
	show(opt, rewritten, "OPT", *maxRows, *repeat)
}

func show(g storage.Graph, q *cypher.Query, tag string, maxRows, repeat int) {
	// Compile once, execute -repeat times: repeated executions reuse the
	// plan's symbol resolution and binding slots.
	plan, err := query.Prepare(g, q)
	if err != nil {
		log.Fatalf("%s: %v", tag, err)
	}
	var st query.Stats
	var res *query.Result
	start := time.Now()
	for i := 0; i < repeat; i++ {
		// Per-run counters: every execution does identical work, so the
		// printed stats describe one run regardless of -repeat.
		st = query.Stats{}
		if res, err = plan.ExecuteWithStats(&st); err != nil {
			log.Fatalf("%s: %v", tag, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%s: %d rows | %d vertices scanned, %d edges traversed, %d properties read",
		tag, len(res.Rows), st.VerticesScanned, st.EdgesTraversed, st.PropsRead)
	if repeat > 1 {
		fmt.Printf(" | %d runs in %v (%v/run)", repeat, elapsed, elapsed/time.Duration(repeat))
	}
	fmt.Println()
	fmt.Printf("  %s\n", strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if i == maxRows {
			fmt.Printf("  ... (%d more)\n", len(res.Rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
			if len(parts[j]) > 40 {
				parts[j] = parts[j][:37] + "..."
			}
		}
		fmt.Printf("  %s\n", strings.Join(parts, " | "))
	}
}
