// Command pgsquery runs ad-hoc Cypher queries against a generated dataset
// under both the direct and the optimized schema, showing the rewritten
// query, both result sets, and the work counters side by side — the
// fastest way to inspect what the optimizer does to a specific query.
//
// Usage:
//
//	pgsquery -dataset MED 'MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc))'
//	pgsquery -dataset FIN -budget-pct 25 -localize 'MATCH (s:Person)-[:holds]->(a:Account) RETURN a.accountId'
//	pgsquery -dataset MED -repeat 1000 -parallel 4 -stats 'MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name'
//	pgsquery -dataset MED -backend diskstore -stats 'MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name'
//
// -profile prints the executor's per-step operator trace (visited and
// produced counts per plan step) for each schema — the same trace the
// server returns for PROFILE queries.
//
// -stats prints plan-cache effectiveness after the run (hits, misses,
// singleflight shares, compiles), each backend's per-label vertex counts,
// and, on the diskstore backend, each store's pager I/O counters plus its
// format/live-write state (segmented adjacency, compressed-adjacency size
// and ratio on format v5, delta segment sizes, WAL activity) — so
// -parallel runs surface how well the shared-plan path and the page cache
// actually held up. -mmap serves the vertex/edge files from a read-only
// memory map instead of the page cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/storage/diskstore"
	"repro/internal/storage/memstore"
	"repro/internal/workload"
)

// cleanups are run before exit, normal or fatal: temp diskstore
// directories must not outlive the process.
var cleanups []func()

func runCleanups() {
	for _, f := range cleanups {
		f()
	}
}

// fatalf is log.Fatalf preceded by the registered cleanups (log.Fatalf
// alone would os.Exit past the deferred ones).
func fatalf(format string, v ...any) {
	runCleanups()
	log.Fatalf(format, v...)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsquery: ")
	dataset := flag.String("dataset", "MED", "dataset: MED or FIN")
	card := flag.Int("card", 60, "base cardinality per concept")
	seed := flag.Int64("seed", 2021, "data generation seed")
	budgetPct := flag.Float64("budget-pct", -1, "space budget as % of Cost(NSC); negative = unconstrained")
	localize := flag.Bool("localize", false, "also localize scalar neighbor lookups (paper's Q6 behaviour)")
	maxRows := flag.Int("rows", 10, "result rows to print per schema")
	repeat := flag.Int("repeat", 1, "execute each query this many times (compiled once) and report total latency")
	parallel := flag.Int("parallel", 1, "drive the -repeat executions from this many goroutines sharing one cached plan")
	queryWorkers := flag.Int("query-workers", 1, "morsel workers inside each query execution (intra-query parallelism)")
	backend := flag.String("backend", "memstore", "storage backend: memstore or diskstore")
	cachePages := flag.Int("cache-pages", 64, "diskstore page cache size")
	mmap := flag.Bool("mmap", false, "serve diskstore vertex/edge reads from a read-only memory map instead of the page cache")
	stats := flag.Bool("stats", false, "print plan-cache stats (and pager I/O on diskstore) after the run")
	profile := flag.Bool("profile", false, "print the per-step operator trace (visited/produced per plan step) for each schema")
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}
	if *parallel < 1 {
		*parallel = 1
	}
	if *queryWorkers < 1 {
		*queryWorkers = 1
	}

	if flag.NArg() != 1 {
		log.Fatal("usage: pgsquery [flags] 'MATCH ... RETURN ...'")
	}
	src := flag.Arg(0)
	parsed, err := cypher.Parse(src)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	var o = datagen.MED()
	if *dataset == "FIN" {
		o = datagen.FIN()
	} else if *dataset != "MED" {
		log.Fatalf("unknown dataset %q", *dataset)
	}
	ds, err := datagen.Generate(o, datagen.Options{Seed: *seed, BaseCard: *card})
	if err != nil {
		log.Fatal(err)
	}

	// Optimize for this query's own access pattern, like the paper's
	// workload summaries.
	af, err := workload.AFFromQueries(o, []workload.Query{{Name: "q", Text: src}})
	if err != nil {
		log.Fatal(err)
	}
	in, err := optimizer.NewInputs(o, ds.Stats, af, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var plan *optimizer.Plan
	if *budgetPct < 0 {
		plan, err = optimizer.NSC(in)
	} else {
		total, terr := in.NSCCost()
		if terr != nil {
			log.Fatal(terr)
		}
		plan, err = optimizer.PGSG(in, total**budgetPct/100)
	}
	if err != nil {
		log.Fatal(err)
	}

	rewritten, notes, err := rewrite.Rewrite(parsed, plan.Result.Mapping, rewrite.Options{LocalizeScalarLookups: *localize})
	if err != nil {
		log.Fatal(err)
	}

	// One store per schema on the chosen backend; diskstore stores live in
	// a temp dir removed on exit (fatalf runs the cleanups before exiting,
	// since log.Fatal would skip deferred ones).
	defer runCleanups()
	newStore := func(tag string) storage.Builder {
		switch *backend {
		case "memstore":
			return memstore.New()
		case "diskstore":
			d, err := os.MkdirTemp("", "pgsquery-"+tag+"-*")
			if err != nil {
				fatalf("%v", err)
			}
			st, err := diskstore.Open(d, diskstore.Options{CachePages: *cachePages, Mmap: *mmap})
			if err != nil {
				os.RemoveAll(d)
				fatalf("%v", err)
			}
			cleanups = append(cleanups, func() {
				st.Close()
				os.RemoveAll(d)
			})
			return st
		default:
			log.Fatalf("unknown backend %q", *backend)
			return nil
		}
	}
	dir, opt := newStore("dir"), newStore("opt")
	if _, _, err := loader.Load(dir, ds, nil); err != nil {
		fatalf("%v", err)
	}
	if _, _, err := loader.Load(opt, ds, plan.Result.Mapping); err != nil {
		fatalf("%v", err)
	}
	// Measure from a cold page cache, like a freshly started disk system.
	for _, st := range []storage.Builder{dir, opt} {
		if d, ok := st.(*diskstore.Store); ok {
			if err := d.DropCache(); err != nil {
				fatalf("%v", err)
			}
			d.ResetStats()
		}
	}

	fmt.Printf("DIR query: %s\n", parsed)
	fmt.Printf("OPT query: %s\n", rewritten)
	for _, n := range notes {
		fmt.Printf("  rewrite: %s\n", n)
	}
	fmt.Println()
	// One shared plan cache serves both schemas: entries are keyed by
	// (query text, graph), so the DIR and OPT plans never collide.
	cache := query.NewCache(0)
	show(cache, dir, parsed, "DIR", *maxRows, *repeat, *parallel, *queryWorkers, *profile)
	fmt.Println()
	show(cache, opt, rewritten, "OPT", *maxRows, *repeat, *parallel, *queryWorkers, *profile)
	if *stats {
		cs := cache.Stats()
		fmt.Printf("\nplan cache: %d hits, %d misses (%d shared an in-flight compile, %d compiles), %d/%d plans resident\n",
			cs.Hits, cs.Misses, cs.Shared, cs.Misses-cs.Shared, cs.Size, cs.Capacity)
		for _, side := range []struct {
			tag string
			g   storage.Graph
		}{{"DIR", dir}, {"OPT", opt}} {
			if sr, ok := side.g.(storage.StatsReporter); ok {
				ps := sr.Stats()
				fmt.Printf("%s pager: %d hits, %d misses, %d page reads, %d page writes\n",
					side.tag, ps.PageHits, ps.PageMisses, ps.PageReads, ps.PageWrites)
			}
			if d, ok := side.g.(*diskstore.Store); ok {
				f := d.Format()
				ls := d.LiveStats()
				fmt.Printf("%s store: format v%d, segmented adjacency=%v, live writes=%v, delta %d vertices / %d edges\n",
					side.tag, f.Version, f.Segmented, ls.Live, ls.DeltaVertices, ls.DeltaEdges)
				if f.Compressed && d.NumEdges() > 0 {
					bpe := float64(f.EdgeBytes) / float64(d.NumEdges())
					fmt.Printf("%s adjacency: %d bytes compressed (%.2f B/edge, %.1fx vs 64 B v4 records)\n",
						side.tag, f.EdgeBytes, bpe, 64/bpe)
				}
				if ls.WALAppends > 0 {
					fmt.Printf("%s wal: %d batches in %d fsyncs, %d bytes\n",
						side.tag, ls.WALAppends, ls.WALSyncs, ls.WALBytes)
				}
			}
			if sg, ok := side.g.(storage.Statistics); ok {
				labels := sg.LabelCounts()
				names := make([]string, 0, len(labels))
				for name := range labels {
					names = append(names, name)
				}
				sort.Strings(names)
				parts := make([]string, 0, len(names))
				for _, name := range names {
					parts = append(parts, fmt.Sprintf("%s=%d", name, labels[name]))
				}
				fmt.Printf("%s labels: %s\n", side.tag, strings.Join(parts, " "))
			}
		}
	}
}

func show(cache *query.Cache, g storage.Graph, q *cypher.Query, tag string, maxRows, repeat, parallel, queryWorkers int, profile bool) {
	// Compile once through the shared cache, execute -repeat times from
	// -parallel goroutines: every worker shares the same immutable plan.
	plan, err := cache.GetParsed(g, q)
	if err != nil {
		fatalf("%s: %v", tag, err)
	}
	// Per-run counters: every execution does identical work — morsel
	// workers merge their counters exactly — so the printed stats describe
	// one run regardless of -repeat or -query-workers.
	var st query.Stats
	var res *query.Result
	var prof *query.Profile
	if profile {
		res, prof, err = plan.ExecuteParallelProfiled(queryWorkers, &st)
	} else {
		res, err = plan.ExecuteParallelWithStats(queryWorkers, &st)
	}
	if err != nil {
		fatalf("%s: %v", tag, err)
	}
	fmt.Printf("%s: %d rows | %d vertices scanned, %d edges traversed, %d properties read",
		tag, len(res.Rows), st.VerticesScanned, st.EdgesTraversed, st.PropsRead)
	if repeat > 1 || parallel > 1 {
		text := q.String()
		var wg sync.WaitGroup
		errs := make([]error, parallel)
		start := time.Now()
		for w := 0; w < parallel; w++ {
			// Spread the -repeat executions across workers so exactly
			// that many runs happen regardless of divisibility.
			share := repeat / parallel
			if w < repeat%parallel {
				share++
			}
			wg.Add(1)
			go func(w, share int) {
				defer wg.Done()
				for i := 0; i < share; i++ {
					// Each request re-fetches through the cache, the way an
					// ad-hoc serving path would; after the first miss these
					// are all hits on the shared plan.
					p, err := cache.Get(g, text)
					if err == nil {
						_, err = p.ExecuteParallel(queryWorkers)
					}
					if err != nil {
						errs[w] = err
						return
					}
				}
			}(w, share)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fatalf("%s: %v", tag, err)
			}
		}
		fmt.Printf(" | %d runs across %d goroutines in %v (%v/run, %.0f ops/sec aggregate)",
			repeat, parallel, elapsed, elapsed/time.Duration(repeat),
			float64(repeat)/elapsed.Seconds())
	}
	fmt.Println()
	if prof != nil {
		mode := "serial"
		if prof.Parallel {
			mode = fmt.Sprintf("parallel: %d morsels on %d workers", prof.Morsels, prof.Workers)
		}
		fmt.Printf("  plan (%s):\n", mode)
		for i, s := range prof.Steps {
			target := s.Target
			if s.Bound {
				target += " (bound)"
			}
			fmt.Printf("    %d. %-10s %-16s visited %-8d produced %d\n",
				i+1, s.Op, target, s.Visited, s.Produced)
		}
	}
	fmt.Printf("  %s\n", strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if i == maxRows {
			fmt.Printf("  ... (%d more)\n", len(res.Rows)-maxRows)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
			if len(parts[j]) > 40 {
				parts[j] = parts[j][:37] + "..."
			}
		}
		fmt.Printf("  %s\n", strings.Join(parts, " | "))
	}
}
