// Command pgsopt optimizes a property graph schema from an ontology, the
// paper's end-to-end pipeline: ontology (+ optional space budget and
// workload distribution) in, Cypher-style schema DDL out.
//
// Usage:
//
//	pgsopt -ontology med.json                   # Algorithm 5, no budget
//	pgsopt -ontology med.json -budget-pct 25    # PGSG at 25% of Cost(NSC)
//	pgsopt -ontology med.json -algo rc -theta1 0.9 -theta2 0.1
//	pgsgen -dataset MED | pgsopt -ontology -    # read from stdin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgsopt: ")
	path := flag.String("ontology", "", "ontology JSON file ('-' for stdin)")
	budgetPct := flag.Float64("budget-pct", -1, "space budget as % of Cost(NSC); negative = unconstrained (Algorithm 5)")
	algo := flag.String("algo", "pgsg", "algorithm: pgsg, rc, cc, nsc, dir")
	theta1 := flag.Float64("theta1", 0.66, "inheritance Jaccard upper threshold")
	theta2 := flag.Float64("theta2", 0.33, "inheritance Jaccard lower threshold")
	dist := flag.String("workload", "uniform", "workload summary: uniform or zipf")
	nq := flag.Int("queries", 200, "workload size used to derive access frequencies")
	seed := flag.Int64("seed", 2021, "workload sampling seed")
	showMapping := flag.Bool("mapping", false, "also print the instance-level mapping")
	flag.Parse()

	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	var o *ontology.Ontology
	var err error
	if *path == "-" {
		o, err = ontology.Read(os.Stdin)
	} else {
		o, err = ontology.ReadFile(*path)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{Theta1: *theta1, Theta2: *theta2}
	var af *ontology.AccessFrequencies
	switch *dist {
	case "uniform":
		af = nil
	case "zipf":
		wl, werr := workload.Generate(o, *nq, workload.Zipf, *seed)
		if werr != nil {
			log.Fatal(werr)
		}
		af = wl.AF
	default:
		log.Fatalf("unknown workload %q", *dist)
	}

	in, err := optimizer.NewInputs(o, nil, af, cfg)
	if err != nil {
		log.Fatal(err)
	}
	total, err := in.NSCCost()
	if err != nil {
		log.Fatal(err)
	}
	budget := -1.0
	if *budgetPct >= 0 {
		budget = total * *budgetPct / 100
	}

	var plan *optimizer.Plan
	switch *algo {
	case "pgsg":
		if budget < 0 {
			plan, err = optimizer.NSC(in)
		} else {
			plan, err = optimizer.PGSG(in, budget)
		}
	case "rc":
		if budget < 0 {
			budget = total
		}
		plan, err = optimizer.RelationCentric(in, budget)
	case "cc":
		if budget < 0 {
			budget = total
		}
		plan, err = optimizer.ConceptCentric(in, budget)
	case "nsc":
		plan, err = optimizer.NSC(in)
	case "dir":
		plan, err = optimizer.Direct(in)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}

	br, err := in.BenefitRatio(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- algorithm: %s  benefit: %.1f (BR %.3f)  space: %.0f / %.0f bytes  time: %s\n",
		plan.Algorithm, plan.Benefit, br, plan.Cost, total, plan.Elapsed)
	fmt.Printf("-- nodes: %d  edges: %d  list properties: %d\n",
		len(plan.Result.PGS.Nodes), len(plan.Result.PGS.Edges), plan.Result.PGS.NumListProps())
	fmt.Println(plan.Result.PGS.DDL())

	if *showMapping {
		fmt.Println("-- mapping:")
		for _, mg := range plan.Result.Mapping.Merges {
			fmt.Printf("--   merge %-14s %s\n", mg.Kind, mg.RelKey)
		}
		for _, lp := range plan.Result.Mapping.ListProps {
			dir := ""
			if lp.Reverse {
				dir = " (reverse)"
			}
			fmt.Printf("--   replicate %s.%s -> %s.`%s`%s\n", lp.Neighbor, lp.Prop, lp.Carrier, lp.Key, dir)
		}
	}
}
