// Financial: schema optimization for the FIN ontology under varying space
// budgets — the paper's Figure 9 axis — showing how the benefit ratio
// grows with space and how the selected schema changes, plus the schema
// the paper's microbenchmark parameters produce.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	env, err := bench.NewEnv("FIN", bench.Options{FinCard: 25, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FIN ontology: %d concepts, %d properties, %d relationships %v\n\n",
		len(env.Ontology.Concepts), env.Ontology.NumProps(),
		len(env.Ontology.Relationships), env.Ontology.CountByType())

	// Space sweep (Figure 9 shape) under a Zipf workload.
	pts, err := bench.VaryingSpace(env, workload.Zipf, []float64{0.1, 1, 10, 25, 50, 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatBRTable("Benefit ratio vs space constraint (FIN, Zipf workload)", pts))

	// Inspect what the optimizer selects at a 10% budget.
	wl, err := env.WorkloadAF(workload.Zipf, 200)
	if err != nil {
		log.Fatal(err)
	}
	in, err := env.Inputs(wl.AF, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	total, err := in.NSCCost()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := optimizer.PGSG(in, total/10)
	if err != nil {
		log.Fatal(err)
	}
	br, err := in.BenefitRatio(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PGSG at 10%% budget chose %s: benefit ratio %.3f, %.0f of %.0f bytes\n",
		plan.Algorithm, br, plan.Cost, total/10)
	fmt.Printf("schema: %d node types, %d edge types, %d list properties\n",
		len(plan.Result.PGS.Nodes), len(plan.Result.PGS.Edges), plan.Result.PGS.NumListProps())
	fmt.Printf("merges: %d, replications: %d\n\n", len(plan.Result.Mapping.Merges), len(plan.Result.Mapping.ListProps))

	// The Q3 chain in the optimized schema.
	fmt.Println("Selected merges touching the Q3 isA chain:")
	for _, m := range plan.Result.Mapping.Merges {
		if m.From == "Person" || m.To == "Person" || m.From == "ContractParty" {
			fmt.Printf("  %s %s\n", m.Kind, m.RelKey)
		}
	}
}
