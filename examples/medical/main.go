// Medical: the paper's MED evaluation pipeline — generate the 43-concept
// medical knowledge graph, optimize under a space budget with the
// microbenchmark workload, and run the MED microbenchmark queries (Q1,
// Q2, Q5, Q6, Q9, Q10) on DIR and OPT graphs over both storage backends.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	env, err := bench.NewEnv("MED", bench.Options{MedCard: 100, Seed: 7, Reps: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MED ontology: %d concepts, %d properties, %d relationships\n",
		len(env.Ontology.Concepts), env.Ontology.NumProps(), len(env.Ontology.Relationships))
	fmt.Printf("MED data: %d instances, %d links\n\n", env.Dataset.NumInstances(), env.Dataset.NumLinks())

	rows, err := bench.Microbenchmark(env, []bench.Backend{bench.Memstore, bench.Diskstore})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatMicroTable("MED microbenchmark (Q1, Q2, Q5, Q6, Q9, Q10)", rows))

	fmt.Println("Rewritten OPT queries:")
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Query] {
			seen[r.Query] = true
			fmt.Printf("  %-4s %s\n", r.Query, r.Rewritten)
		}
	}

	mot, err := bench.Motivating(env, bench.Diskstore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(bench.FormatMotivating(mot))
}
