// Workload: demonstrates workload-aware optimization — the same MED
// ontology optimized under the same space budget picks different rule
// applications for a uniform workload than for a Zipf workload, and each
// schema serves its own workload faster than the other's.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/loader"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage/memstore"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	env, err := bench.NewEnv("MED", bench.Options{MedCard: 80, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	plans := map[workload.Distribution]*optimizer.Plan{}
	workloads := map[workload.Distribution]*workload.Workload{}
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
		wl, err := env.WorkloadAF(dist, 30)
		if err != nil {
			log.Fatal(err)
		}
		in, err := env.Inputs(wl.AF, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		total, err := in.NSCCost()
		if err != nil {
			log.Fatal(err)
		}
		plan, err := optimizer.PGSG(in, total/5) // 20% budget
		if err != nil {
			log.Fatal(err)
		}
		plans[dist] = plan
		workloads[dist] = wl
		fmt.Printf("%s workload -> %s schema: %d merges, %d replications, benefit %.1f\n",
			dist, plan.Algorithm, len(plan.Result.Mapping.Merges),
			len(plan.Result.Mapping.ListProps), plan.Benefit)
	}

	// Compare selected rule applications.
	u, z := ruleSet(plans[workload.Uniform]), ruleSet(plans[workload.Zipf])
	onlyU, onlyZ := diff(u, z), diff(z, u)
	fmt.Printf("\nrule applications only in the uniform schema: %d\n", len(onlyU))
	for i, s := range onlyU {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + s)
	}
	fmt.Printf("rule applications only in the Zipf schema: %d\n", len(onlyZ))
	for i, s := range onlyZ {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + s)
	}

	// Cross-evaluation: each schema runs both workloads.
	fmt.Printf("\n%-18s %16s %16s\n", "total traversals", "uniform schema", "zipf schema")
	for _, wdist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
		fmt.Printf("%-18s", wdist.String()+" workload")
		for _, sdist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
			n, err := traversals(env, plans[sdist], workloads[wdist])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %16d", n)
		}
		fmt.Println()
	}
}

func ruleSet(p *optimizer.Plan) map[string]bool {
	out := map[string]bool{}
	for _, a := range p.Result.Rules.Apps() {
		out[a.String()] = true
	}
	return out
}

func diff(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	return out
}

// traversals loads the OPT graph for the plan and totals edge traversals
// of the workload's rewritten queries. Sampled workloads repeat the same
// query templates, so plans come from a query.Cache: each distinct
// rewritten text compiles once and repeats hit the shared plan.
func traversals(env *bench.Env, plan *optimizer.Plan, wl *workload.Workload) (int64, error) {
	st := memstore.New()
	if _, _, err := loader.Load(st, env.Dataset, plan.Result.Mapping); err != nil {
		return 0, err
	}
	cache := query.NewCache(0)
	var stats query.Stats
	for _, q := range wl.Queries {
		parsed, err := cypher.Parse(q.Text)
		if err != nil {
			return 0, err
		}
		rw, _, err := rewrite.Rewrite(parsed, plan.Result.Mapping, rewrite.Options{LocalizeScalarLookups: q.Localize})
		if err != nil {
			return 0, err
		}
		p, err := cache.GetParsed(st, rw)
		if err != nil {
			return 0, err
		}
		if _, err := p.ExecuteWithStats(&stats); err != nil {
			return 0, err
		}
	}
	return stats.EdgesTraversed, nil
}
