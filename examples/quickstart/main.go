// Quickstart: the paper's Figure 2 medical ontology end to end —
// optimize the schema with Algorithm 5, load the same data under the
// direct (DIR) and optimized (OPT) schemas, and run the two §1 motivating
// queries on both, showing the traversal savings.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage/memstore"
)

func main() {
	log.SetFlags(0)

	// 1. The Figure 2 ontology.
	o := ontology.New()
	str := func(n string) ontology.Property { return ontology.Property{Name: n, Type: ontology.TString} }
	o.AddConcept("Drug", str("name"), str("brand"))
	o.AddConcept("Indication", str("desc"))
	o.AddConcept("Condition", str("condName"), str("note"))
	o.AddConcept("Risk")
	o.AddConcept("ContraIndication", str("ciDesc"))
	o.AddConcept("BlackBoxWarning", str("warnNote"), str("route"))
	o.AddConcept("DrugInteraction", str("summary"))
	o.AddConcept("DrugFoodInteraction", str("riskLevel"))
	o.AddConcept("DrugLabInteraction", str("mechanism"))
	o.AddRelationship("treat", "Drug", "Indication", ontology.OneToMany)
	o.AddRelationship("is", "Indication", "Condition", ontology.OneToOne)
	o.AddRelationship("cause", "Drug", "Risk", ontology.OneToMany)
	o.AddRelationship("unionOf", "Risk", "ContraIndication", ontology.Union)
	o.AddRelationship("unionOf", "Risk", "BlackBoxWarning", ontology.Union)
	o.AddRelationship("has", "Drug", "DrugInteraction", ontology.OneToMany)
	o.AddRelationship("isA", "DrugInteraction", "DrugFoodInteraction", ontology.Inheritance)
	o.AddRelationship("isA", "DrugInteraction", "DrugLabInteraction", ontology.Inheritance)

	// 2. Optimize without a space constraint (Algorithm 5).
	res, err := core.NSC(o, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Optimized property graph schema (Algorithm 5) ===")
	fmt.Println(res.PGS.DDL())
	fmt.Println("=== Applied transformations ===")
	for _, m := range res.Mapping.Merges {
		fmt.Printf("  merge %-14s %s\n", m.Kind, m.RelKey)
	}
	for _, lp := range res.Mapping.ListProps {
		fmt.Printf("  replicate %s.%s as %s.`%s`\n", lp.Neighbor, lp.Prop, lp.Carrier, lp.Key)
	}

	// 3. Generate data and load it under both schemas.
	ds, err := datagen.Generate(o, datagen.Options{Seed: 1, BaseCard: 500})
	if err != nil {
		log.Fatal(err)
	}
	dir, opt := memstore.New(), memstore.New()
	if _, _, err := loader.Load(dir, ds, nil); err != nil {
		log.Fatal(err)
	}
	if _, _, err := loader.Load(opt, ds, res.Mapping); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDIR graph: %d vertices, %d edges\n", dir.NumVertices(), dir.NumEdges())
	fmt.Printf("OPT graph: %d vertices, %d edges\n", opt.NumVertices(), opt.NumEdges())

	// 4. The two §1 motivating queries.
	examples := []struct {
		title string
		text  string
	}{
		{"Example 1 (pattern matching through the interaction hierarchy)",
			`MATCH (d:Drug)-[:has]->(di:DrugInteraction)<-[:isA]-(dfi:DrugFoodInteraction) RETURN d.name, dfi.riskLevel`},
		{"Example 2 (aggregation over treat)",
			`MATCH (d:Drug)-[:treat]->(i:Indication) RETURN d.name, size(COLLECT(i.desc)) AS n`},
	}
	for _, ex := range examples {
		q := cypher.MustParse(ex.text)
		rw, notes, err := rewrite.Rewrite(q, res.Mapping, rewrite.Options{})
		if err != nil {
			log.Fatal(err)
		}
		var ds1, ds2 query.Stats
		r1, err := query.RunWithStats(dir, q, &ds1)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := query.RunWithStats(opt, rw, &ds2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", ex.title)
		fmt.Printf("DIR query: %s\n", q)
		fmt.Printf("OPT query: %s\n", rw)
		for _, n := range notes {
			fmt.Printf("  rewrite: %s\n", n)
		}
		fmt.Printf("DIR: %4d rows, %6d edge traversals, %6d property reads\n",
			len(r1.Rows), ds1.EdgesTraversed, ds1.PropsRead)
		fmt.Printf("OPT: %4d rows, %6d edge traversals, %6d property reads\n",
			len(r2.Rows), ds2.EdgesTraversed, ds2.PropsRead)
	}
}
