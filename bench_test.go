// Benchmarks regenerating each table and figure of the paper's
// evaluation (§5). Run all of them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the paper's metric as custom units alongside
// ns/op: benefit ratios for Figures 8-10 (BR_RC/BR_CC), DIR vs OPT
// latency for Figures 11-12 (dir_ms/opt_ms/speedup), and optimizer wall
// time for Table 2 (rc_ms/cc_ms).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

// Thin indirections keep the benchmark bodies readable.
var (
	coreDefaultConfig        = core.DefaultConfig
	optimizerRelationCentric = optimizer.RelationCentric
	optimizerGreedy          = optimizer.RelationCentricGreedy
)

// benchOpts keeps benchmark datasets small enough for iteration while
// preserving every effect the paper reports (fanouts, facet hierarchies,
// disk-bound cache ratios).
func benchOpts() bench.Options {
	return bench.Options{MedCard: 60, FinCard: 20, Seed: 2021, Reps: 1, CachePages: 64}
}

func newBenchEnv(b *testing.B, name string) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(name, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkFigure8 regenerates Figure 8: benefit ratio vs space
// constraint on MED for uniform and Zipf workloads.
func BenchmarkFigure8(b *testing.B) {
	benchVaryingSpace(b, "MED", bench.DefaultSpacePcts)
}

// BenchmarkFigure9 regenerates Figure 9: benefit ratio vs space
// constraint on FIN.
func BenchmarkFigure9(b *testing.B) {
	benchVaryingSpace(b, "FIN", append([]float64{0.001}, bench.DefaultSpacePcts...))
}

func benchVaryingSpace(b *testing.B, dataset string, pcts []float64) {
	env := newBenchEnv(b, dataset)
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
		for _, pct := range pcts {
			b.Run(fmt.Sprintf("%s/space=%g%%", dist, pct), func(b *testing.B) {
				var pts []bench.BRPoint
				var err error
				for i := 0; i < b.N; i++ {
					pts, err = bench.VaryingSpace(env, dist, []float64{pct})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pts[0].RC, "BR_RC")
				b.ReportMetric(pts[0].CC, "BR_CC")
			})
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: benefit ratio vs Jaccard
// thresholds on FIN at a 50% space constraint.
func BenchmarkFigure10(b *testing.B) {
	env := newBenchEnv(b, "FIN")
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
		for _, th := range bench.DefaultThetaPairs {
			b.Run(fmt.Sprintf("%s/theta=%g_%g", dist, th[0], th[1]), func(b *testing.B) {
				var pts []bench.ThetaPoint
				var err error
				for i := 0; i < b.N; i++ {
					pts, err = bench.VaryingThetas(env, dist, [][2]float64{th})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pts[0].RC, "BR_RC")
				b.ReportMetric(pts[0].CC, "BR_CC")
			})
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: the Q1-Q12 microbenchmark on
// both backends, reporting DIR and OPT latency per query.
func BenchmarkFigure11(b *testing.B) {
	for _, dataset := range []string{"MED", "FIN"} {
		env := newBenchEnv(b, dataset)
		for _, backend := range []bench.Backend{bench.Memstore, bench.Diskstore} {
			b.Run(fmt.Sprintf("%s/%s", dataset, backend), func(b *testing.B) {
				var rows []bench.MicroRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = bench.Microbenchmark(env, []bench.Backend{backend})
					if err != nil {
						b.Fatal(err)
					}
				}
				var dir, opt float64
				for _, r := range rows {
					dir += r.DirMs
					opt += r.OptMs
				}
				b.ReportMetric(dir, "dir_ms")
				b.ReportMetric(opt, "opt_ms")
				if opt > 0 {
					b.ReportMetric(dir/opt, "speedup")
				}
			})
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12: total latency of the 15-query
// Zipf workload, DIR vs OPT per backend.
func BenchmarkFigure12(b *testing.B) {
	for _, dataset := range []string{"MED", "FIN"} {
		env := newBenchEnv(b, dataset)
		for _, backend := range []bench.Backend{bench.Memstore, bench.Diskstore} {
			b.Run(fmt.Sprintf("%s/%s", dataset, backend), func(b *testing.B) {
				var rows []bench.WorkloadRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = bench.WorkloadLatency(env, []bench.Backend{backend})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rows[0].DirMs, "dir_ms")
				b.ReportMetric(rows[0].OptMs, "opt_ms")
				b.ReportMetric(rows[0].Speedup, "speedup")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: RC and CC optimization time at
// 25/50/75% space constraints.
func BenchmarkTable2(b *testing.B) {
	for _, dataset := range []string{"MED", "FIN"} {
		env := newBenchEnv(b, dataset)
		for _, pct := range []int{25, 50, 75} {
			b.Run(fmt.Sprintf("%s/space=%d%%", dataset, pct), func(b *testing.B) {
				var rows []bench.EffRow
				var err error
				for i := 0; i < b.N; i++ {
					rows, err = bench.Efficiency(env, []int{pct})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rows[0].RCms, "rc_ms")
				b.ReportMetric(rows[0].CCms, "cc_ms")
			})
		}
	}
}

// BenchmarkAblationKnapsack quantifies what the FPTAS knapsack buys over
// greedy benefit/cost selection at a 25% budget (ablation of DESIGN.md
// item 7 / Algorithm 8's design choice).
func BenchmarkAblationKnapsack(b *testing.B) {
	for _, dataset := range []string{"MED", "FIN"} {
		env := newBenchEnv(b, dataset)
		b.Run(dataset, func(b *testing.B) {
			var fptas, greedy float64
			for i := 0; i < b.N; i++ {
				in, err := env.Inputs(nil, coreDefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				total, err := in.NSCCost()
				if err != nil {
					b.Fatal(err)
				}
				rc, err := optimizerRelationCentric(in, total/4)
				if err != nil {
					b.Fatal(err)
				}
				gr, err := optimizerGreedy(in, total/4)
				if err != nil {
					b.Fatal(err)
				}
				fb, err := in.BenefitRatio(rc)
				if err != nil {
					b.Fatal(err)
				}
				gb, err := in.BenefitRatio(gr)
				if err != nil {
					b.Fatal(err)
				}
				fptas, greedy = fb, gb
			}
			b.ReportMetric(fptas, "BR_fptas")
			b.ReportMetric(greedy, "BR_greedy")
		})
	}
}

// BenchmarkParallelScaling measures aggregate throughput of one shared
// compiled plan under 1/2/4/8 concurrent readers per backend. ops/sec and
// allocs/op per worker count are reported as custom metrics; flat
// allocs/op across worker counts is the pooled-machine guarantee. The
// "diskstore-tight" variant constrains the page budget to 16 pages so the
// workload is genuinely disk-bound: its curve rising with workers is the
// sharded-pager acceptance check (the old single pager mutex kept it
// flat). Each variant also reports the intra-query half — a single client
// fanning each execution over 1/2/4/8 morsel workers — as
// intra_ops/s_<n>w metrics; the rising intra curve on diskstore-tight is
// the morsel-parallelism acceptance check.
func BenchmarkParallelScaling(b *testing.B) {
	env := newBenchEnv(b, "MED")
	variants := []struct {
		name string
		env  *bench.Env
		back bench.Backend
	}{
		{"memstore", env, bench.Memstore},
		{"diskstore", env, bench.Diskstore},
		{"diskstore-tight", env.WithCachePages(16), bench.Diskstore},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var pts []bench.ParallelPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = bench.ParallelScaling(v.env, v.back, bench.DefaultParallelGoroutines, 20)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pts {
				b.ReportMetric(p.OpsPerSec, fmt.Sprintf("ops/s_%dw", p.Goroutines))
				b.ReportMetric(p.AllocsPerOp, fmt.Sprintf("allocs/op_%dw", p.Goroutines))
			}
			top := pts[len(pts)-1]
			b.ReportMetric(top.Speedup, fmt.Sprintf("speedup_%dw", top.Goroutines))

			var ipts []bench.IntraQueryPoint
			for i := 0; i < b.N; i++ {
				ipts, err = bench.IntraQueryScaling(v.env, v.back, bench.DefaultQueryWorkers, 20)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range ipts {
				b.ReportMetric(p.OpsPerSec, fmt.Sprintf("intra_ops/s_%dw", p.Workers))
			}
			itop := ipts[len(ipts)-1]
			b.ReportMetric(itop.Speedup, fmt.Sprintf("intra_speedup_%dw", itop.Workers))
		})
	}
}

// BenchmarkServeThroughput is the end-to-end traffic number: a live HTTP
// server on a loopback port (admission control, plan cache, pooled JSON
// encoding included) under 1 and 8 concurrent clients, on memstore and on
// the disk-bound tight-cache diskstore. req/s and p50/p99 latency per
// client count are reported as custom metrics.
func BenchmarkServeThroughput(b *testing.B) {
	env := newBenchEnv(b, "MED")
	variants := []struct {
		name string
		env  *bench.Env
		back bench.Backend
	}{
		{"memstore", env, bench.Memstore},
		{"diskstore-tight", env.WithCachePages(16), bench.Diskstore},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var pts []bench.ServePoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = bench.ServeThroughput(v.env, v.back,
					bench.ServeOptions{Clients: []int{1, 8}, RequestsPerClient: 25})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, p := range pts {
				b.ReportMetric(p.ReqPerSec, fmt.Sprintf("req/s_%dc", p.Clients))
				b.ReportMetric(p.P50Ms, fmt.Sprintf("p50ms_%dc", p.Clients))
				b.ReportMetric(p.P99Ms, fmt.Sprintf("p99ms_%dc", p.Clients))
			}
		})
	}
}

// BenchmarkMotivating regenerates the §1 examples on the disk backend.
func BenchmarkMotivating(b *testing.B) {
	env := newBenchEnv(b, "MED")
	for i := 0; i < b.N; i++ {
		rows, err := bench.Motivating(env, bench.Diskstore)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Speedup, r.Example+"_speedup")
			}
		}
	}
}
