// Package repro is an ontology-driven property graph schema optimizer — a
// from-scratch reproduction of "Property Graph Schema Optimization for
// Domain-Specific Knowledge Graphs" (Lei et al., ICDE 2021).
//
// The package is a thin facade over the implementation packages:
//
//   - internal/ontology — the domain ontology model and optimizer inputs
//   - internal/core     — the §3 relationship rules, Algorithm 5, schema
//     and mapping generation
//   - internal/optimizer — the §4 space-constrained algorithms (CC, RC,
//     PGSG) with the Equations 3-5 cost model
//   - internal/datagen, internal/loader — synthetic MED/FIN datasets and
//     graph instantiation under any schema
//   - internal/cypher, internal/query, internal/rewrite — the Cypher
//     subset, executor, and DIR→OPT query translation
//   - internal/storage — the memstore and diskstore backends
//
// Typical use:
//
//	o := repro.MED()
//	plan, _ := repro.Optimize(o, nil, nil, repro.DefaultConfig(), budget)
//	fmt.Println(plan.Result.PGS.DDL())
package repro

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/loader"
	"repro/internal/ontology"
	"repro/internal/optimizer"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// Re-exported core types. The aliases keep example programs and external
// tooling on a single import path.
type (
	// Ontology is a domain ontology (concepts, properties, relationships).
	Ontology = ontology.Ontology
	// Stats carries data characteristics (cardinalities, value sizes).
	Stats = ontology.Stats
	// AccessFrequencies summarizes a workload for the cost model.
	AccessFrequencies = ontology.AccessFrequencies
	// Config holds the inheritance-rule Jaccard thresholds.
	Config = core.Config
	// PGS is a generated property graph schema.
	PGS = core.PGS
	// Mapping is the instance-level transformation trace of a schema.
	Mapping = core.Mapping
	// Plan is an optimization outcome with benefit/cost accounting.
	Plan = optimizer.Plan
	// Dataset is generated instance data conforming to an ontology.
	Dataset = datagen.Dataset
	// RewriteOptions tunes DIR→OPT query translation.
	RewriteOptions = rewrite.Options
)

// DefaultConfig returns the paper's thresholds θ1=0.66, θ2=0.33.
func DefaultConfig() Config { return core.DefaultConfig() }

// MED builds the paper's medical evaluation ontology (§5.1).
func MED() *Ontology { return datagen.MED() }

// FIN builds the paper's financial evaluation ontology (§5.1).
func FIN() *Ontology { return datagen.FIN() }

// ReadOntology loads an ontology from a JSON file.
func ReadOntology(path string) (*Ontology, error) { return ontology.ReadFile(path) }

// GenerateData synthesizes deterministic instance data for the ontology.
func GenerateData(o *Ontology, seed int64, baseCard int) (*Dataset, error) {
	return datagen.Generate(o, datagen.Options{Seed: seed, BaseCard: baseCard})
}

// Optimize produces an optimized schema. A negative budget runs Algorithm
// 5 (no space constraint); otherwise PGSG picks the better of the
// relation-centric and concept-centric algorithms under the budget (in
// bytes of replicated storage). Stats and af may be nil for uniform
// defaults.
func Optimize(o *Ontology, stats *Stats, af *AccessFrequencies, cfg Config, budget float64) (*Plan, error) {
	return optimizer.Optimize(o, stats, af, cfg, budget)
}

// Direct produces the baseline direct-mapping schema (DIR).
func Direct(o *Ontology) (*Plan, error) {
	in, err := optimizer.NewInputs(o, nil, nil, DefaultConfig())
	if err != nil {
		return nil, err
	}
	return optimizer.Direct(in)
}

// Load instantiates the dataset on the storage builder under the mapping
// (nil mapping = direct schema). It returns vertex and edge counts.
func Load(b storage.Builder, ds *Dataset, m *Mapping) (vertices, edges int, err error) {
	return loader.Load(b, ds, m)
}
