package repro

import (
	"fmt"
	"testing"

	"repro/internal/cypher"
	"repro/internal/graph"
	"repro/internal/ontology"
	"repro/internal/query"
	"repro/internal/rewrite"
	"repro/internal/storage/memstore"
	"repro/internal/workload"
)

func TestFacadeOptimizeMED(t *testing.T) {
	o := MED()
	plan, err := Optimize(o, nil, nil, DefaultConfig(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != "NSC" || len(plan.Result.PGS.Nodes) == 0 {
		t.Errorf("plan = %s with %d nodes", plan.Algorithm, len(plan.Result.PGS.Nodes))
	}
	dir, err := Direct(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.Result.PGS.Nodes) != len(o.Concepts) {
		t.Error("DIR node count mismatch")
	}
}

func TestFacadeLoadRoundTrip(t *testing.T) {
	o := FIN()
	ds, err := GenerateData(o, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	st := memstore.New()
	v, e, err := Load(st, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != ds.NumInstances() || e != ds.NumLinks() {
		t.Errorf("loaded %d/%d, want %d/%d", v, e, ds.NumInstances(), ds.NumLinks())
	}
}

// TestEndToEndEquivalence is the repository's capstone invariant: for
// random ontologies and datasets, every generated workload query returns
// the same answer on the DIR graph as its rewrite does on the OPT graph
// (aggregates compare by total, localized lookups by value multiset).
func TestEndToEndEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			o := ontology.RandomOntology(seed, 7, 12)
			wl, err := workload.Generate(o, 12, workload.Uniform, seed)
			if err != nil {
				t.Skip("no motifs for this ontology")
			}
			plan, err := Optimize(o, nil, wl.AF, DefaultConfig(), -1)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := GenerateData(o, seed, 30)
			if err != nil {
				t.Fatal(err)
			}
			dir, opt := memstore.New(), memstore.New()
			if _, _, err := Load(dir, ds, nil); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Load(opt, ds, plan.Result.Mapping); err != nil {
				t.Fatal(err)
			}
			for _, q := range wl.Queries {
				parsed, err := cypher.Parse(q.Text)
				if err != nil {
					t.Fatalf("%s: %v", q.Name, err)
				}
				rw, _, err := rewrite.Rewrite(parsed, plan.Result.Mapping, rewrite.Options{LocalizeScalarLookups: q.Localize})
				if err != nil {
					t.Fatalf("%s rewrite: %v", q.Name, err)
				}
				rd, err := query.Run(dir, parsed)
				if err != nil {
					t.Fatalf("%s DIR: %v", q.Name, err)
				}
				ro, err := query.Run(opt, rw)
				if err != nil {
					t.Fatalf("%s OPT (%s): %v", q.Name, rw, err)
				}
				if !equivalent(q, rd, ro) {
					t.Errorf("%s results differ\n  DIR q: %s (%d rows)\n  OPT q: %s (%d rows)",
						q.Name, parsed, len(rd.Rows), rw, len(ro.Rows))
				}
			}
		})
	}
}

// equivalent compares results according to the query kind's rewrite
// contract.
func equivalent(q workload.Query, dir, opt *query.Result) bool {
	switch {
	case q.Kind == workload.Aggregation:
		// Global aggregate: DIR has one total row; the localized form has
		// one row per carrier vertex whose sizes sum to the same total.
		return sumInts(dir) == sumInts(opt)
	case q.Localize:
		// Localized lookup: rows flatten to the same value multiset.
		return multiset(dir) == multiset(opt)
	default:
		if len(dir.Rows) != len(opt.Rows) {
			return false
		}
		query.SortRowsForComparison(dir.Rows)
		query.SortRowsForComparison(opt.Rows)
		for i := range dir.Rows {
			for j := range dir.Rows[i] {
				if !dir.Rows[i][j].Equal(opt.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}
}

func sumInts(r *query.Result) int64 {
	var t int64
	for _, row := range r.Rows {
		for _, v := range row {
			t += v.Int()
		}
	}
	return t
}

func multiset(r *query.Result) string {
	counts := map[string]int{}
	var flatten func(v graph.Value)
	flatten = func(v graph.Value) {
		if v.Kind() == graph.KindList {
			for _, e := range v.List() {
				flatten(e)
			}
			return
		}
		if !v.IsNull() {
			counts[v.Key()]++
		}
	}
	for _, row := range r.Rows {
		for _, v := range row {
			flatten(v)
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	// Deterministic rendering.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, counts[k])
	}
	return out
}
