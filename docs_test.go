package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the docs-freshness guard (also run as a dedicated CI
// step): every package under internal/ and cmd/ must carry a package doc
// comment in at least one of its non-test files, so `go doc` output stays
// useful end to end.
func TestPackageDocs(t *testing.T) {
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			files, globErr := filepath.Glob(filepath.Join(path, "*.go"))
			if globErr != nil {
				return globErr
			}
			documented := false
			sources := 0
			for _, f := range files {
				if strings.HasSuffix(f, "_test.go") {
					continue
				}
				sources++
				fset := token.NewFileSet()
				parsed, perr := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
				if perr != nil {
					t.Errorf("%s: %v", f, perr)
					continue
				}
				if parsed.Doc != nil && strings.TrimSpace(parsed.Doc.Text()) != "" {
					documented = true
				}
			}
			if sources > 0 && !documented {
				t.Errorf("package %s has no package doc comment (add a `// Package ...` or `// Command ...` comment)", path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDocsPresentAndLinked keeps the docs layer from silently rotting:
// the two reference documents must exist, cover their load-bearing
// topics, and be linked from the README.
func TestDocsPresentAndLinked(t *testing.T) {
	docs := map[string][]string{
		// Each doc must mention these markers; they are the pieces most
		// likely to be invalidated by code changes, so a rewrite that
		// removes them should revisit the doc.
		"docs/ARCHITECTURE.md": {
			"manifest", "v3", "degrees.db", "shard", "clock", "latch",
			"build-then-concurrent-read", "singleflight",
			// Format v4: the persisted index, the segmented-adjacency
			// invariant, and the bulk-load finalize contract must stay
			// documented alongside the code that implements them.
			"v4", "index.db", "segmented", "Compact", "Finalize",
			"BulkLoader", "BatchBuilder", "writeFileAtomic", "commit point",
			// Format v5: the delta-varint adjacency layout, the mmap read
			// contract, and the persisted-statistics block (with its two
			// consumers) must stay documented alongside the code.
			"Format v5", "delta-varint", "uvarint", "firstOutEID",
			"bytes-per-edge", "Options.Mmap", "drops its mapping",
			"PGSIDX05", "bloom", "MayHaveProp", "EdgeTypeCounts",
			"FromStorage", "pgs_stats_bloom_skips_total", "-exp compress",
			"compression_ratio",
			// Serving layer: admission control, shutdown semantics, and
			// the stats endpoint schema must stay documented.
			"Serving layer", "pgsserve", "429", "admission", "drain",
			"/stats", "ExecuteContext", "loadgen", "top_queries",
			// Durability: the WAL/delta live-write path, its checkpoint
			// protocol, and the crash-recovery contract must stay
			// documented alongside the recovery code.
			"wal.db", "group commit", "delta segment", "wal_seq",
			"ErrFinalizeInterrupted", "/mutate", "crashtest",
			"Crash matrix", "MutateFrac",
			// Intra-query parallelism: the morsel partitioning hook, the
			// bounded-memory merge pipeline, and the knob that composes
			// with admission must stay documented.
			"Query execution", "morsel", "PlanVertexScan",
			"query-workers", "top-k", "MinParallelRootCount",
			// Background compaction: the epoch/snapshot machinery, its
			// commit point, the WAL epoch routing, and the harnesses
			// that enforce it must stay documented.
			"Background compaction", "epoch", "AcquireSnapshot",
			"ErrCompactInProgress", "/admin/compact", "auto-compact",
			"fold.tmp", "OracleRun", "FuzzWALReplay", "PinnedSnapshots",
			// Observability: the metrics registry, the Prometheus
			// exposition and its strict checker, request-ID propagation,
			// PROFILE traces, the slow-query log, and pprof wiring must
			// stay documented alongside the code.
			"Observability", "obs.Registry", "/metrics", "promcheck",
			"X-Request-Id", "PROFILE", "plan_cache_hit", "slow-query",
			"pgs_server_requests_total", "pprof-addr", "metrics-smoke",
		},
		"docs/QUERY_LANGUAGE.md": {
			"MATCH", "RETURN", "DISTINCT", "ORDER BY", "LIMIT",
			"OPTIONAL MATCH", "Variable-length", "Edge property",
		},
	}
	for path, markers := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing doc: %v", err)
			continue
		}
		text := string(data)
		for _, m := range markers {
			if !strings.Contains(text, m) {
				t.Errorf("%s no longer mentions %q; update the doc alongside the code", path, m)
			}
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, link := range []string{"docs/ARCHITECTURE.md", "docs/QUERY_LANGUAGE.md"} {
		if !strings.Contains(string(readme), link) {
			t.Errorf("README.md does not link %s", link)
		}
	}
}
